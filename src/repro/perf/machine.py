"""Machine models for the cross-architecture experiments (Table IV,
Figs. 8–9).

The paper evaluates on three servers — Intel Skylake 8160, AMD EPYC 7551
and ARM ThunderX CN8890 — whose hardware parameters are listed in its
Table IV.  Only one x86 host is available to this reproduction, so the
"performance on ARM/AMD" figures are reproduced through a calibrated
machine model:

1. the *traffic model* of the kernel (bytes moved, from Eq. 4's
   denominator) and its flop count are computed analytically;
2. a :class:`MachineProfile` supplies the architecture's sustainable
   memory bandwidth and per-core compute throughput;
3. predicted kernel time = max(bytes / bandwidth, flops / peak_flops) —
   the standard roofline execution-time bound — with an efficiency factor
   calibrated once against measurements on the native host
   (:func:`calibrate_efficiency`).

The prediction is used for the *relative* comparisons the figures make
(FusedMM vs the unfused baseline per graph); DESIGN.md documents this
substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.patterns import OpPattern
from ..sparse import as_csr
from .flops import pattern_flops

__all__ = [
    "MachineProfile",
    "MACHINES",
    "traffic_bytes",
    "predict_kernel_time",
    "calibrate_efficiency",
]


@dataclass(frozen=True)
class MachineProfile:
    """Hardware constants of one evaluation platform (paper Table IV).

    ``stream_bandwidth_gbs`` follows the paper where stated (100 GB/s for
    the Intel server, from the Fig. 7 roofline); the AMD and ARM values are
    the published STREAM-triad numbers for those platforms.
    """

    name: str
    clock_ghz: float
    cores: int
    sockets: int
    l1_kb: int
    l2_kb: int
    llc_mb: int
    memory_gb: int
    stream_bandwidth_gbs: float
    simd_width_floats: int
    #: sustained single-precision GFLOP/s per core for BLAS1-like kernels
    per_core_gflops: float

    @property
    def total_cores(self) -> int:
        """Cores across all sockets."""
        return self.cores * self.sockets

    @property
    def peak_gflops(self) -> float:
        """Sustained node-level GFLOP/s used as the compute roof."""
        return self.per_core_gflops * self.total_cores


#: The three platforms of Table IV plus a "host" profile used for the
#: measurements taken on this machine (bandwidth is calibrated at runtime).
MACHINES: Dict[str, MachineProfile] = {
    "intel_skylake_8160": MachineProfile(
        name="Intel Skylake 8160",
        clock_ghz=2.10,
        cores=24,
        sockets=2,
        l1_kb=32,
        l2_kb=1024,
        llc_mb=32,
        memory_gb=256,
        stream_bandwidth_gbs=100.0,
        simd_width_floats=16,  # AVX-512
        per_core_gflops=8.0,
    ),
    "amd_epyc_7551": MachineProfile(
        name="AMD EPYC 7551",
        clock_ghz=2.0,
        cores=32,
        sockets=2,
        l1_kb=32,
        l2_kb=512,
        llc_mb=8,
        memory_gb=128,
        stream_bandwidth_gbs=120.0,
        simd_width_floats=8,  # AVX2
        per_core_gflops=6.0,
    ),
    "arm_thunderx_cn8890": MachineProfile(
        name="ARM ThunderX CN8890",
        clock_ghz=1.9,
        cores=48,
        sockets=1,
        l1_kb=32,
        l2_kb=0,  # the paper notes this server has no L2
        llc_mb=16,
        memory_gb=64,
        stream_bandwidth_gbs=45.0,
        simd_width_floats=4,  # NEON/ASIMD
        per_core_gflops=2.5,
    ),
}


def traffic_bytes(
    A,
    d: int,
    *,
    fused: bool = True,
    scalar_messages: bool = True,
    value_bytes: int = 4,
    index_bytes: int = 8,
) -> int:
    """Main-memory traffic model of one kernel invocation.

    Follows the denominator of Eq. 4 for the fused kernel: X and Z are
    streamed once (``2·4·m·d``), A once (``12·nnz``), and Y is read once
    per edge with no reuse assumed (``4·nnz·d``).  The unfused pipeline
    additionally writes H once and reads it once (``2 × (4 or 4·d)·nnz``
    plus its index traffic), which is exactly the extra traffic fusion
    removes.
    """
    A = as_csr(A)
    m, nnz = A.nrows, A.nnz
    base = (
        2 * value_bytes * m * d  # X read + Z written
        + (index_bytes + value_bytes) * nnz  # A streamed
        + value_bytes * nnz * d  # Y gathered per edge
    )
    if fused:
        return base
    h_entry = value_bytes * (1 if scalar_messages else d)
    # H written by SDDMM and read back by SpMM, plus a second pass over Y
    # for the separate SpMM.
    return base + 2 * (h_entry + index_bytes) * nnz + value_bytes * nnz * d


def predict_kernel_time(
    A,
    d: int,
    machine: MachineProfile | str,
    *,
    pattern: OpPattern | str = "sigmoid_embedding",
    fused: bool = True,
    scalar_messages: bool = True,
    efficiency: float = 1.0,
    num_threads: Optional[int] = None,
) -> float:
    """Roofline-bound execution-time prediction on ``machine`` (seconds).

    ``efficiency`` rescales the bound to account for everything the model
    does not capture (Python overhead, imperfect streaming); calibrate it
    once on the native host with :func:`calibrate_efficiency` and reuse it
    across machines — the relative machine-to-machine ratios then come
    purely from the hardware constants.
    """
    if isinstance(machine, str):
        machine = MACHINES[machine]
    A = as_csr(A)
    flops = pattern_flops(pattern, d, A.nnz)
    if not fused:
        # The unfused pipeline re-does the MOP/AOP work reading H.
        flops = int(flops * 1.25)
    bytes_moved = traffic_bytes(
        A, d, fused=fused, scalar_messages=scalar_messages
    )
    threads = num_threads or machine.total_cores
    bw = machine.stream_bandwidth_gbs * 1e9
    # Bandwidth does not scale past a few cores; compute scales linearly.
    compute = machine.per_core_gflops * 1e9 * min(threads, machine.total_cores)
    time_bw = bytes_moved / bw
    time_fl = flops / compute
    return max(time_bw, time_fl) / max(efficiency, 1e-9)


def calibrate_efficiency(
    measured_seconds: float,
    A,
    d: int,
    machine: MachineProfile | str,
    *,
    pattern: OpPattern | str = "sigmoid_embedding",
    fused: bool = True,
    scalar_messages: bool = True,
    num_threads: Optional[int] = None,
) -> float:
    """Efficiency factor that makes the model reproduce a measured time on
    the calibration platform: ``predicted_ideal / measured``."""
    ideal = predict_kernel_time(
        A,
        d,
        machine,
        pattern=pattern,
        fused=fused,
        scalar_messages=scalar_messages,
        efficiency=1.0,
        num_threads=num_threads,
    )
    if measured_seconds <= 0:
        return 1.0
    return ideal / measured_seconds
