"""Floating-point operation counts for FusedMM patterns.

Section IV.C of the paper estimates the computational complexity of
FusedMM as ``O(d · nnz)``: each of the five steps does O(d) work per stored
entry of A.  The roofline analysis (Fig. 7) counts "both addition and
multiplications as floating point operations", giving ``2·d·nnz`` flops for
the SDDMM half (multiply + add of the dot product) and ``2·d·nnz`` for the
SpMM half — ``4·d·nnz`` total for the embedding pattern.

These counts feed the GFLOP/s numbers of the roofline experiment; they are
*model* counts (what the algorithm must do), not hardware counter readings.
"""

from __future__ import annotations

from ..core.patterns import OpPattern, get_pattern
from ..sparse import as_csr

__all__ = ["pattern_flops", "fusedmm_flops"]

#: Per-edge, per-dimension flop factors of each step for the standard ops.
_STEP_FLOPS = {
    # VOP: one op per element
    "vop": {"MUL": 1, "ADD": 1, "SUB": 1, "SEL1ST": 0, "SEL2ND": 0, "EDGESCALE": 1, "NOOP": 0},
    # ROP: one op per element to reduce, NORM adds a sqrt (counted as 1 per edge, amortised to ~0 per element)
    "rop": {"RSUM": 1, "RMUL": 1, "RMAX": 1, "NORM": 2, "NOOP": 0},
    # SOP acts on a scalar (when ROP reduces) or a vector; cost counted per element of its input
    "sop": {"SIGMOID": 4, "TDIST": 3, "RELU": 1, "TANH": 4, "EXP": 2, "SCAL": 1, "NOOP": 0},
    # MOP: one multiply per element
    "mop": {"MUL": 1, "MULDIFF": 1, "EDGESCALE": 1, "SEL1ST": 0, "SEL2ND": 0, "ADD": 1, "SUB": 1, "NOOP": 0},
    # AOP: one add/max per element
    "aop": {"ASUM": 1, "AMAX": 1, "AMIN": 1},
}


def pattern_flops(pattern: OpPattern | str, d: int, nnz: int, **overrides) -> int:
    """Model flop count of one FusedMM call with the given pattern.

    Unknown (user-defined) operators are charged one flop per element,
    which keeps the estimate conservative.
    """
    resolved = get_pattern(pattern, **overrides).resolved()
    names = resolved.op_names()
    scalar_msg = resolved.message_is_scalar

    per_edge = 0.0
    per_edge += _STEP_FLOPS["vop"].get(names["vop"], 1) * d
    per_edge += _STEP_FLOPS["rop"].get(names["rop"], 1) * (d if not resolved.rop.is_noop else 0)
    sop_cost = _STEP_FLOPS["sop"].get(names["sop"], 1)
    per_edge += sop_cost * (1 if scalar_msg else d)
    per_edge += _STEP_FLOPS["mop"].get(names["mop"], 1) * d
    per_edge += _STEP_FLOPS["aop"].get(names["aop"], 1) * d
    return int(per_edge * nnz)


def fusedmm_flops(A, d: int, pattern: OpPattern | str = "sigmoid_embedding", **overrides) -> int:
    """Convenience wrapper taking the sparse matrix directly."""
    return pattern_flops(pattern, d, as_csr(A).nnz, **overrides)
