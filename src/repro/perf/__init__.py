"""Performance substrate: timing, flop/traffic/memory models, roofline,
machine profiles and scaling harnesses."""

from .flops import fusedmm_flops, pattern_flops
from .machine import (
    MACHINES,
    MachineProfile,
    calibrate_efficiency,
    predict_kernel_time,
    traffic_bytes,
)
from .memory import (
    MemoryEstimate,
    fusedmm_memory_bytes,
    measure_peak_allocation,
    memory_model_sweep,
)
from .roofline import (
    RooflinePoint,
    arithmetic_intensity,
    arithmetic_intensity_formula,
    attainable_gflops,
    measure_stream_bandwidth,
    roofline_point,
)
from .scaling import ScalingPoint, modeled_scaling_curve, strong_scaling
from .timer import Stopwatch, Timing, stopwatch, time_kernel

__all__ = [
    "pattern_flops",
    "fusedmm_flops",
    "traffic_bytes",
    "MachineProfile",
    "MACHINES",
    "predict_kernel_time",
    "calibrate_efficiency",
    "MemoryEstimate",
    "fusedmm_memory_bytes",
    "memory_model_sweep",
    "measure_peak_allocation",
    "arithmetic_intensity",
    "arithmetic_intensity_formula",
    "attainable_gflops",
    "measure_stream_bandwidth",
    "RooflinePoint",
    "roofline_point",
    "ScalingPoint",
    "strong_scaling",
    "modeled_scaling_curve",
    "Timing",
    "time_kernel",
    "Stopwatch",
    "stopwatch",
]
