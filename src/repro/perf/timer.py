"""Timing utilities for the benchmark harness.

The paper "measures the time for 10 iterations and reports the average
time" (Section V.A).  :func:`time_kernel` reproduces that protocol: a few
warm-up calls followed by ``repeats`` timed calls, returning mean / min /
std so tables can report whichever statistic they need.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List

import numpy as np

__all__ = ["Timing", "time_kernel", "Stopwatch", "stopwatch"]


@dataclass(frozen=True)
class Timing:
    """Aggregate of repeated timed runs of one kernel call."""

    seconds: List[float]

    @property
    def mean(self) -> float:
        """Mean seconds per call (the paper's reported statistic)."""
        return float(np.mean(self.seconds)) if self.seconds else 0.0

    @property
    def best(self) -> float:
        """Fastest observed call."""
        return float(np.min(self.seconds)) if self.seconds else 0.0

    @property
    def std(self) -> float:
        """Standard deviation across calls."""
        return float(np.std(self.seconds)) if self.seconds else 0.0

    @property
    def total(self) -> float:
        """Total measured seconds."""
        return float(np.sum(self.seconds)) if self.seconds else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for table rows."""
        return {"mean": self.mean, "best": self.best, "std": self.std, "repeats": len(self.seconds)}


def time_kernel(
    fn: Callable,
    *args,
    repeats: int = 10,
    warmup: int = 1,
    **kwargs,
) -> Timing:
    """Time ``fn(*args, **kwargs)`` following the paper's protocol
    (``repeats=10`` averaged runs after a warm-up call)."""
    for _ in range(max(0, warmup)):
        fn(*args, **kwargs)
    seconds = []
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn(*args, **kwargs)
        seconds.append(time.perf_counter() - t0)
    return Timing(seconds=seconds)


@dataclass
class Stopwatch:
    """Accumulating stopwatch with named laps (used inside training loops to
    separate kernel time from bookkeeping time)."""

    laps: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def lap(self, name: str):
        """Context manager accumulating elapsed seconds under ``name``."""
        t0 = time.perf_counter()
        try:
            yield self
        finally:
            self.laps[name] = self.laps.get(name, 0.0) + (time.perf_counter() - t0)

    def total(self) -> float:
        """Sum of all laps."""
        return float(sum(self.laps.values()))

    def reset(self) -> None:
        """Clear all laps."""
        self.laps.clear()


@contextmanager
def stopwatch():
    """Minimal timing context manager: ``with stopwatch() as t: ...`` then
    read ``t.elapsed``."""

    class _Result:
        elapsed = 0.0

    result = _Result()
    t0 = time.perf_counter()
    try:
        yield result
    finally:
        result.elapsed = time.perf_counter() - t0
