"""Memory models and measurement (Section IV.C, Fig. 10b).

The paper's memory accounting with 8-byte indices and single-precision
values is:

* FusedMM operands: ``8·m·d`` (X and Z) + ``4·n·d`` (Y) + ``12·nnz`` (A)
  bytes — **independent of d for the sparse part**;
* the unfused pipeline additionally stores the intermediate message matrix
  H, costing ``12·nnz`` bytes for scalar messages and ``12·nnz·d`` bytes
  for d-dimensional messages (the FR-layout case plotted in Fig. 10b).

:func:`fusedmm_memory_bytes` and
:func:`repro.baselines.unfused.unfused_memory_bytes` implement that model;
:func:`measure_peak_allocation` measures actual allocation with
``tracemalloc`` so the model can be cross-checked on this substrate.
"""

from __future__ import annotations

import tracemalloc
from dataclasses import dataclass
from typing import Callable, Dict

from ..core.patterns import OpPattern
from ..sparse import as_csr

__all__ = [
    "MemoryEstimate",
    "fusedmm_memory_bytes",
    "memory_model_sweep",
    "measure_peak_allocation",
]

INDEX_BYTES = 8
VALUE_BYTES = 4


@dataclass(frozen=True)
class MemoryEstimate:
    """Byte accounting of one kernel invocation."""

    operands_bytes: int
    intermediate_bytes: int

    @property
    def total_bytes(self) -> int:
        """Operands + intermediates."""
        return self.operands_bytes + self.intermediate_bytes

    @property
    def total_megabytes(self) -> float:
        """Total in MB (the unit of Fig. 10b)."""
        return self.total_bytes / (1024.0 * 1024.0)


def fusedmm_memory_bytes(
    A,
    d: int,
    *,
    block_size: int = 0,
    value_bytes: int = VALUE_BYTES,
    index_bytes: int = INDEX_BYTES,
) -> MemoryEstimate:
    """Memory requirement of the fused kernel per Section IV.C:
    ``8md + 4nd + 12nnz`` bytes of operands plus (for the Python
    edge-blocked kernel) one block of ``block_size × d`` intermediates."""
    A = as_csr(A)
    m, n, nnz = A.nrows, A.ncols, A.nnz
    operands = 2 * value_bytes * m * d + value_bytes * n * d + (index_bytes + value_bytes) * nnz
    intermediate = value_bytes * block_size * d if block_size else 0
    return MemoryEstimate(operands_bytes=operands, intermediate_bytes=intermediate)


def memory_model_sweep(
    A,
    dims,
    *,
    pattern: OpPattern | str = "fr_layout",
) -> Dict[int, Dict[str, float]]:
    """The Fig. 10(b) sweep: fused vs unfused memory (MB) as d grows.

    Returns ``{d: {"fusedmm_mb": ..., "unfused_mb": ...}}``.
    """
    from ..baselines.unfused import unfused_memory_bytes

    A = as_csr(A)
    out: Dict[int, Dict[str, float]] = {}
    for d in dims:
        fused = fusedmm_memory_bytes(A, int(d))
        unfused = unfused_memory_bytes(A, int(d), pattern=pattern)
        out[int(d)] = {
            "fusedmm_mb": fused.total_megabytes,
            "unfused_mb": unfused / (1024.0 * 1024.0),
        }
    return out


def measure_peak_allocation(fn: Callable, *args, **kwargs) -> Dict[str, float]:
    """Run ``fn`` under ``tracemalloc`` and report the peak Python-level
    allocation in MB alongside the function's return value size when it is
    an ndarray.  Used to cross-check the analytical model on this
    substrate (absolute values differ from the paper's RSS measurements,
    but the *growth with d* is the property being reproduced)."""
    tracemalloc.start()
    try:
        result = fn(*args, **kwargs)
        current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    out = {"peak_mb": peak / (1024.0 * 1024.0), "current_mb": current / (1024.0 * 1024.0)}
    if hasattr(result, "nbytes"):
        out["result_mb"] = float(result.nbytes) / (1024.0 * 1024.0)
    return out
