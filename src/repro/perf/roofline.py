"""Arithmetic intensity and roofline analysis (Eq. 4, Fig. 7).

Eq. 4 of the paper bounds the arithmetic intensity (AI) of FusedMM as

``AI > (2dmδ + 2dmδ) / (12mδ + 8md + 4dmδ) = δ / (3δ/d + 2 + δ)``

where ``δ`` is the average degree and ``d`` the feature dimension: for a
typical ``d = 128`` the AI is essentially determined by the graph's
sparsity, it approaches 1 for dense graphs and drops to 1/6 in the
degenerate ``δ = d = 1`` case — FusedMM is memory-bound everywhere, so the
attainable GFLOP/s is ``min(peak, AI × bandwidth)``.

This module computes the AI (both the closed form and the exact
counts-based value), measures attained GFLOP/s from a timed kernel run,
estimates the host's sustainable ("STREAM") bandwidth with a triad-like
NumPy loop, and packages everything into the rows the Fig. 7 experiment
prints.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..core.patterns import OpPattern
from ..sparse import as_csr
from .flops import pattern_flops
from .machine import traffic_bytes

__all__ = [
    "arithmetic_intensity_formula",
    "arithmetic_intensity",
    "attainable_gflops",
    "measure_stream_bandwidth",
    "RooflinePoint",
    "roofline_point",
]


def arithmetic_intensity_formula(avg_degree: float, d: int) -> float:
    """The closed-form lower bound of Eq. 4:
    ``AI = δ / (3δ/d + 2 + δ)``."""
    if avg_degree <= 0 or d <= 0:
        return 0.0
    delta = float(avg_degree)
    return delta / (3.0 * delta / d + 2.0 + delta)


def arithmetic_intensity(A, d: int, *, pattern: OpPattern | str = "sigmoid_embedding") -> float:
    """Exact arithmetic intensity from the flop and traffic models:
    the paper's Eq. 4 numerator counts 2 flops per element for each of the
    SDDMM and SpMM halves (``4·d·nnz`` total), which is what
    :func:`pattern_flops` reports for the embedding pattern."""
    A = as_csr(A)
    flops = pattern_flops(pattern, d, A.nnz)
    bytes_moved = traffic_bytes(A, d, fused=True)
    return float(flops) / max(bytes_moved, 1)


def attainable_gflops(ai: float, bandwidth_gbs: float, peak_gflops: float = float("inf")) -> float:
    """Roofline ceiling at arithmetic intensity ``ai``:
    ``min(peak, ai × bandwidth)``."""
    return float(min(peak_gflops, ai * bandwidth_gbs))


def measure_stream_bandwidth(size_mb: float = 64.0, repeats: int = 3) -> float:
    """Measure the host's sustainable memory bandwidth (GB/s) with a
    STREAM-triad-like kernel ``a = b + s*c`` on arrays too large for cache.

    This plays the role of the paper's "STREAM bandwidth on this server is
    100 GB/s" calibration of the roofline plot.
    """
    n = max(1, int(size_mb * 1024 * 1024 / 8 / 3))  # three float64 arrays
    b = np.random.default_rng(0).random(n)
    c = np.random.default_rng(1).random(n)
    best = 0.0
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        a = b + 0.5 * c
        elapsed = time.perf_counter() - t0
        # triad moves 3 arrays (2 reads + 1 write) of 8 bytes per element
        gbs = 3 * 8 * n / elapsed / 1e9
        best = max(best, gbs)
        del a
    return best


@dataclass(frozen=True)
class RooflinePoint:
    """One graph's point on the roofline plot of Fig. 7."""

    graph: str
    arithmetic_intensity: float
    attained_gflops: float
    attainable_gflops: float
    bandwidth_gbs: float
    kernel_seconds: float

    def as_row(self) -> Dict[str, float]:
        """Table-row view."""
        return {
            "graph": self.graph,
            "AI": round(self.arithmetic_intensity, 3),
            "attained_gflops": round(self.attained_gflops, 3),
            "attainable_gflops": round(self.attainable_gflops, 3),
            "bandwidth_gbs": round(self.bandwidth_gbs, 2),
            "kernel_seconds": self.kernel_seconds,
        }


def roofline_point(
    graph_name: str,
    A,
    d: int,
    kernel_seconds: float,
    *,
    pattern: OpPattern | str = "sigmoid_embedding",
    bandwidth_gbs: Optional[float] = None,
    peak_gflops: float = float("inf"),
) -> RooflinePoint:
    """Build the roofline datum for one graph from a measured kernel time."""
    A = as_csr(A)
    ai = arithmetic_intensity(A, d, pattern=pattern)
    flops = pattern_flops(pattern, d, A.nnz)
    attained = flops / max(kernel_seconds, 1e-12) / 1e9
    bw = bandwidth_gbs if bandwidth_gbs is not None else measure_stream_bandwidth()
    return RooflinePoint(
        graph=graph_name,
        arithmetic_intensity=ai,
        attained_gflops=attained,
        attainable_gflops=attainable_gflops(ai, bw, peak_gflops),
        bandwidth_gbs=bw,
        kernel_seconds=kernel_seconds,
    )
