"""Strong-scaling harness (Fig. 10a).

The paper's Fig. 10(a) shows FusedMM scaling to ~20× on 32 cores for the
Orkut graph at d=256, against DGL's ~16×.  This host typically exposes far
fewer cores, so the harness does two things:

* **measure** the thread sweep that is actually possible here (speedup of
  the partition-parallel kernel over its single-thread run), and
* **model** the full 1–32 core curve with an Amdahl/bandwidth-ceiling model
  calibrated from the measured single-thread time, so the figure's shape
  (near-linear at low counts, flattening once the memory bandwidth
  saturates) can still be regenerated and compared against the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from .timer import time_kernel

__all__ = ["ScalingPoint", "strong_scaling", "modeled_scaling_curve"]


@dataclass(frozen=True)
class ScalingPoint:
    """One thread-count datum of a strong-scaling experiment."""

    threads: int
    seconds: float
    speedup: float

    def as_row(self) -> Dict[str, float]:
        """Table-row view."""
        return {"threads": self.threads, "seconds": self.seconds, "speedup": round(self.speedup, 3)}


def strong_scaling(
    kernel: Callable[..., object],
    thread_counts: Sequence[int],
    *,
    repeats: int = 3,
    warmup: int = 1,
    kernel_kwargs: Optional[dict] = None,
) -> List[ScalingPoint]:
    """Measure ``kernel(num_threads=t)`` for each ``t`` and report speedups
    relative to the smallest thread count.

    ``kernel`` must accept a ``num_threads`` keyword (all FusedMM kernels
    do).  On a single-core host the measured speedups will hover around
    1.0 — the modelled curve below exists for exactly that situation.
    """
    kernel_kwargs = dict(kernel_kwargs or {})
    points: List[ScalingPoint] = []
    base_time: Optional[float] = None
    for threads in thread_counts:
        timing = time_kernel(
            kernel, repeats=repeats, warmup=warmup, num_threads=int(threads), **kernel_kwargs
        )
        if base_time is None:
            base_time = timing.mean
        points.append(
            ScalingPoint(
                threads=int(threads),
                seconds=timing.mean,
                speedup=base_time / max(timing.mean, 1e-12),
            )
        )
    return points


def modeled_scaling_curve(
    single_thread_seconds: float,
    thread_counts: Sequence[int],
    *,
    parallel_fraction: float = 0.97,
    bandwidth_saturation_threads: int = 24,
) -> List[ScalingPoint]:
    """Amdahl + bandwidth-ceiling model of the strong-scaling curve.

    ``speedup(t) = 1 / ((1 - p) + p / t_eff)`` where ``t_eff`` grows
    linearly up to ``bandwidth_saturation_threads`` and only with the
    square root of the extra threads beyond it (the memory-bound regime
    where additional cores mostly contend for bandwidth).  With the default
    parameters the model reproduces the paper's ~20× at 32 threads.
    """
    points: List[ScalingPoint] = []
    p = float(np.clip(parallel_fraction, 0.0, 1.0))
    for threads in thread_counts:
        t = max(int(threads), 1)
        if t <= bandwidth_saturation_threads:
            t_eff = float(t)
        else:
            t_eff = bandwidth_saturation_threads + np.sqrt(t - bandwidth_saturation_threads)
        speedup = 1.0 / ((1.0 - p) + p / t_eff)
        points.append(
            ScalingPoint(
                threads=t,
                seconds=single_thread_seconds / max(speedup, 1e-12),
                speedup=speedup,
            )
        )
    return points
