"""Input validation shared by every FusedMM backend.

All kernels accept the same three operands as the paper (Fig. 2):

``A``  an ``m × n`` sparse adjacency slice (CSR),
``X``  an ``m × d`` dense matrix of source-vertex features,
``Y``  an ``n × d`` dense matrix of destination-vertex features,

and produce ``Z`` of shape ``m × d``.  This module centralises the shape
and dtype checks so the backends can assume well-formed inputs.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import DTypeError, ShapeError
from ..sparse import CSRMatrix, as_csr

__all__ = ["validate_operands", "ensure_float_matrix", "resolve_out_window"]


def ensure_float_matrix(arr: np.ndarray, name: str, *, dtype=np.float32) -> np.ndarray:
    """Return ``arr`` as a C-contiguous 2-D float array, converting integer
    inputs and rejecting anything else."""
    arr = np.asarray(arr)
    if arr.ndim != 2:
        raise ShapeError(f"{name} must be a 2-D matrix, got ndim={arr.ndim}")
    if np.issubdtype(arr.dtype, np.integer) or np.issubdtype(arr.dtype, np.bool_):
        arr = arr.astype(dtype)
    if not np.issubdtype(arr.dtype, np.floating):
        raise DTypeError(f"{name} must have a floating dtype, got {arr.dtype}")
    return np.ascontiguousarray(arr)


def resolve_out_window(
    out, row_offset: int, nrows: int, dim: int
) -> Tuple[int, int]:
    """Validate an ``out=``/``row_offset=`` pair against an ``nrows × dim``
    result and return the absolute row window ``[w0, w1)`` it covers.

    Every backend shares these semantics: row ``u`` of the result lands in
    ``out[u - row_offset]``, and when no explicit partition list is given
    the kernel computes exactly the window rows — which is what lets a
    shard worker hand in a view of its slice of the shared output segment
    instead of allocating a full ``(nrows, d)`` matrix.
    """
    if out is None:
        if row_offset:
            raise ShapeError("row_offset is only meaningful together with out=")
        return 0, nrows
    if not isinstance(out, np.ndarray) or out.ndim != 2:
        raise ShapeError(
            f"out must be a 2-D ndarray, got {type(out).__name__}"
        )
    if not np.issubdtype(out.dtype, np.floating):
        raise DTypeError(f"out must have a floating dtype, got {out.dtype}")
    if out.shape[1] != dim:
        raise ShapeError(
            f"out must have {dim} columns to match the feature dimension, "
            f"got {out.shape[1]}"
        )
    w0 = int(row_offset)
    w1 = w0 + out.shape[0]
    if w0 < 0 or w1 > nrows:
        raise ShapeError(
            f"out rows [{w0}, {w1}) fall outside the result rows [0, {nrows})"
        )
    return w0, w1


def validate_operands(A, X, Y=None) -> Tuple[CSRMatrix, np.ndarray, np.ndarray]:
    """Validate and canonicalise the (A, X, Y) operand triple.

    ``Y`` defaults to ``X`` when omitted and ``A`` is square — the common
    whole-graph case where source and destination features coincide.
    """
    A = as_csr(A)
    X = ensure_float_matrix(X, "X")
    if Y is None:
        if A.nrows != A.ncols:
            raise ShapeError(
                "Y may only be omitted for square A; got shape "
                f"{A.shape} — pass the full-vertex feature matrix explicitly"
            )
        Y = X
    else:
        Y = ensure_float_matrix(Y, "Y")
    if X.shape[0] != A.nrows:
        raise ShapeError(
            f"X must have one row per row of A: X has {X.shape[0]}, A has {A.nrows}"
        )
    if Y.shape[0] != A.ncols:
        raise ShapeError(
            f"Y must have one row per column of A: Y has {Y.shape[0]}, A has {A.ncols}"
        )
    if X.shape[1] != Y.shape[1]:
        raise ShapeError(
            f"X and Y must share the feature dimension: {X.shape[1]} != {Y.shape[1]}"
        )
    return A, X, Y
