"""Extensions beyond the paper's core kernel.

The paper singles out attention-based GNNs as the one family whose edge
messages are *not* immediately aggregated (Section I: "In almost all
applications (except in attention-based GNNs), messages generated on edges
are immediately aggregated"), and lists GPU support and further patterns as
future work.  This module implements the CPU-side pieces of that future
work that fit the same substrate:

* :func:`edge_softmax` — normalise per-edge scores within each row (the
  attention normalisation GAT needs).  It is the one genuinely two-pass
  operation: scores must exist for the whole row before they can be
  normalised, so it composes an SDDMM-style score pass with a fused
  aggregation pass rather than a single FusedMM call.
* :func:`attention_aggregate` — a single attention head:
  ``z_u = Σ_v softmax_v(score(x_u, y_v)) · y_v`` with a leaky-ReLU dot
  score, built from :func:`edge_softmax` plus the fused SpMM.
* :func:`sage_mean_aggregate` — GraphSAGE-mean aggregation (neighbour mean
  concatenated with the self feature), expressed with the SpMM
  specialisation and a degree normalisation.

All three reuse the CSR substrate and the fused kernels, so they inherit
the memory behaviour studied in the paper; they are covered by unit tests
and an ablation-style benchmark.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ShapeError
from ..sparse import CSRMatrix, as_csr
from .specialized import spmm_kernel

__all__ = ["edge_softmax", "attention_scores", "attention_aggregate", "sage_mean_aggregate"]


def attention_scores(
    A,
    X: np.ndarray,
    Y: Optional[np.ndarray] = None,
    *,
    negative_slope: float = 0.2,
    scale: Optional[float] = None,
) -> np.ndarray:
    """Per-edge attention logits ``leaky_relu(x_u · y_v / scale)``.

    Returns an ``(nnz,)`` array aligned with ``A.indices`` — the SDDMM half
    of an attention layer.  ``scale`` defaults to ``sqrt(d)`` as in scaled
    dot-product attention.
    """
    A = as_csr(A)
    X = np.ascontiguousarray(X, dtype=np.float32)
    Y = X if Y is None else np.ascontiguousarray(Y, dtype=np.float32)
    if X.shape[0] != A.nrows or Y.shape[0] != A.ncols:
        raise ShapeError("X/Y row counts must match the adjacency dimensions")
    if X.shape[1] != Y.shape[1]:
        raise ShapeError("X and Y must share the feature dimension")
    scale = float(np.sqrt(X.shape[1])) if scale is None else float(scale)
    rows = np.repeat(np.arange(A.nrows, dtype=np.int64), A.row_degrees())
    scores = np.einsum("ij,ij->i", X[rows], Y[A.indices]) / max(scale, 1e-12)
    return np.where(scores >= 0, scores, negative_slope * scores).astype(np.float32)


def edge_softmax(A, scores: np.ndarray) -> np.ndarray:
    """Softmax-normalise per-edge scores within each row of ``A``.

    ``scores`` must be an ``(nnz,)`` array aligned with ``A.indices``; the
    result has the same layout and sums to 1 within every non-empty row.
    """
    A = as_csr(A)
    scores = np.asarray(scores, dtype=np.float64)
    if scores.shape != (A.nnz,):
        raise ShapeError(f"scores must have shape ({A.nnz},), got {scores.shape}")
    if A.nnz == 0:
        return scores.astype(np.float32)
    indptr = A.indptr
    degrees = A.row_degrees()
    # Row-wise numerically-stable softmax over the CSR segments: the edges
    # of one row are contiguous, so reduceat on the segment starts gives the
    # per-row max and sum directly.
    starts = indptr[:-1][degrees > 0]
    seg_id = np.cumsum(np.isin(np.arange(A.nnz), starts)) - 1
    row_max = np.maximum.reduceat(scores, starts)
    exp = np.exp(scores - row_max[seg_id])
    row_sum = np.add.reduceat(exp, starts)
    out = exp / row_sum[seg_id]
    return out.astype(np.float32)


def attention_aggregate(
    A,
    X: np.ndarray,
    Y: Optional[np.ndarray] = None,
    *,
    negative_slope: float = 0.2,
    num_threads: int = 1,
) -> np.ndarray:
    """One dot-product attention head over the graph:
    ``z_u = Σ_v α_uv y_v`` with ``α = edge_softmax(leaky_relu(x_u·y_v/√d))``.

    The score pass materialises one scalar per edge (unavoidable — the
    softmax needs the whole row), after which the aggregation reuses the
    fused SpMM specialisation with the attention weights as edge values.
    """
    A = as_csr(A)
    Y_arr = np.ascontiguousarray(X if Y is None else Y, dtype=np.float32)
    scores = attention_scores(A, X, Y_arr, negative_slope=negative_slope)
    alpha = edge_softmax(A, scores)
    weighted = CSRMatrix(
        A.nrows, A.ncols, A.indptr.copy(), A.indices.copy(), alpha, check=False
    )
    return spmm_kernel(weighted, Y_arr, num_threads=num_threads)


def sage_mean_aggregate(
    A,
    X: np.ndarray,
    Y: Optional[np.ndarray] = None,
    *,
    num_threads: int = 1,
) -> np.ndarray:
    """GraphSAGE-mean aggregation: ``[x_u ‖ mean_{v∈N(u)} y_v]``.

    Returns an ``(m, 2d)`` matrix (self features concatenated with the
    neighbour mean); vertices without neighbours get a zero mean part.
    """
    A = as_csr(A)
    X = np.ascontiguousarray(X, dtype=np.float32)
    Y_arr = X if Y is None else np.ascontiguousarray(Y, dtype=np.float32)
    if X.shape[0] != A.nrows:
        raise ShapeError("X must have one row per row of A")
    ones = A.copy()
    ones.data = np.ones_like(ones.data)
    neighbour_sum = spmm_kernel(ones, Y_arr, num_threads=num_threads)
    degrees = np.maximum(A.row_degrees().astype(np.float32), 1.0)
    neighbour_mean = neighbour_sum / degrees[:, None]
    return np.concatenate([X, neighbour_mean.astype(np.float32)], axis=1)
