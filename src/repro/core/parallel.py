"""Thread-parallel execution of FusedMM over 1-D partitions.

The paper parallelises Algorithm 1 with OpenMP: each thread owns one
nnz-balanced block of rows (``PART1D``), reads the shared ``Y``, and writes
its private slice of ``Z`` — no synchronisation required.  The Python
equivalent used here is a ``ThreadPoolExecutor``: NumPy's inner kernels
release the GIL for large array operations, so blocked kernels overlap on
multi-core hosts, while on a single-core host the structure degrades
gracefully to sequential execution with negligible overhead.

Because partitions map to disjoint row ranges of ``Z``, the result is
bitwise identical regardless of the number of threads — an invariant the
test suite checks.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Optional, Sequence

import numpy as np

from ..errors import PartitionError
from ..sparse import CSRMatrix
from .partition import RowPartition, part1d

__all__ = ["available_threads", "run_partitioned", "ParallelConfig"]


def available_threads() -> int:
    """Number of hardware threads available to this process."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


class ParallelConfig:
    """Execution configuration for partitioned kernels.

    Parameters
    ----------
    num_threads:
        Number of worker threads; ``None`` or 0 means "all available".
        1 forces sequential execution (no executor created).
    parts_per_thread:
        Over-decomposition factor: creating a few more partitions than
        threads lets the pool steal work when partitions are imbalanced.
    """

    def __init__(self, num_threads: Optional[int] = None, parts_per_thread: int = 1) -> None:
        if num_threads is not None and num_threads < 0:
            raise PartitionError("num_threads must be non-negative")
        if parts_per_thread < 1:
            raise PartitionError("parts_per_thread must be >= 1")
        self.num_threads = num_threads or available_threads()
        self.parts_per_thread = parts_per_thread

    @property
    def num_parts(self) -> int:
        """Number of row partitions to create."""
        return max(1, self.num_threads * self.parts_per_thread)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ParallelConfig(num_threads={self.num_threads}, "
            f"parts_per_thread={self.parts_per_thread})"
        )


def run_partitioned(
    A: CSRMatrix,
    Z: np.ndarray,
    kernel: Callable[[RowPartition, np.ndarray], None],
    *,
    config: ParallelConfig | None = None,
    parts: Sequence[RowPartition] | None = None,
    pool: Optional[ThreadPoolExecutor] = None,
    row_offset: int = 0,
) -> np.ndarray:
    """Run ``kernel(part, Z[part.start:part.stop])`` over nnz-balanced row
    partitions, in parallel when more than one thread is configured.

    The kernel must write its results into the ``Z`` slice it is handed and
    must not touch rows outside its partition; this is what makes the
    parallel execution race-free.

    When ``pool`` is given (a long-lived executor owned by the caller, e.g.
    the batched kernel runtime), partitions are dispatched onto it instead
    of a per-call executor, and the pool is *not* shut down afterwards.
    Partitioning — and therefore the arithmetic — is identical either way.

    ``row_offset`` shifts the ``Z`` indexing for windowed output buffers
    (the kernels' ``out=`` surface): partition rows ``[start, stop)`` map
    to ``Z[start - row_offset : stop - row_offset]``.  Every partition must
    fall inside the window ``Z`` covers.
    """
    config = config or ParallelConfig(num_threads=1)
    if parts is None:
        parts = part1d(A, config.num_parts)
    work = [p for p in parts if p.num_rows > 0]
    if row_offset or len(Z) < A.nrows:
        for p in work:
            if p.start < row_offset or p.stop - row_offset > len(Z):
                raise PartitionError(
                    f"partition rows [{p.start}, {p.stop}) fall outside the "
                    f"output window [{row_offset}, {row_offset + len(Z)})"
                )

    def _slice(p: RowPartition) -> np.ndarray:
        return Z[p.start - row_offset : p.stop - row_offset]

    if (config.num_threads <= 1 and pool is None) or len(work) <= 1:
        for p in work:
            kernel(p, _slice(p))
        return Z

    if pool is not None:
        futures = [pool.submit(kernel, p, _slice(p)) for p in work]
        for fut in futures:
            fut.result()  # propagate exceptions
        return Z

    with ThreadPoolExecutor(max_workers=config.num_threads) as pool_:
        futures = [pool_.submit(kernel, p, _slice(p)) for p in work]
        for fut in futures:
            fut.result()  # propagate exceptions
    return Z
