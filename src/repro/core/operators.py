"""The five-step operator abstraction of FusedMM (paper Section III).

FusedMM decomposes message generation + aggregation into five steps, each of
which accepts a user-defined function:

``VOP``  element-wise "multiplication" of the two node feature vectors
``ROP``  reduction of the VOP output to a scalar (or NOOP)
``SOP``  scaling of the ROP/VOP output by a linear or nonlinear function
``MOP``  element-wise "multiplication" of the message with the neighbour
         feature vector (or with the VOP output / edge value)
``AOP``  accumulation of the per-edge contribution into the output row

This module defines:

* :class:`Operator` — a named operator with both a *per-edge* callable used
  by the faithful reference kernel (:mod:`repro.core.generic`) and a
  *batched* callable used by the vectorized kernels
  (:mod:`repro.core.optimized`), plus metadata the optimizer uses to pick
  specializations (does ROP reduce?  is AOP a sum?).
* The standard operator registry of Table II (ADD, MUL, SEL2ND, SIGMOID,
  SCAL, RSUM, RMUL, NORM, ASUM, AMAX, …) plus a few extras the applications
  need (SUB, EDGESCALE, MLP hook, ReLU, …).
* :func:`get_op` / :func:`register_op` for lookup and user extension.

Batched conventions
-------------------
For a vertex ``u`` with ``k`` neighbours, the batched callables receive

``xu``    the ``(d,)`` feature vector of ``u`` (broadcast over neighbours)
``Yn``    the ``(k, d)`` matrix of neighbour features
``av``    the ``(k,)`` edge values
``W``     the ``(k, d)`` VOP output
``H``     the ``(k,)`` or ``(k, d)`` message after SOP

and produce arrays with the leading ``k`` dimension preserved.  The same
callables are reused by the edge-blocked whole-matrix kernels where ``xu``
becomes an ``(k, d)`` matrix of gathered source features — every standard
operator below is written to broadcast correctly in both cases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from ..errors import OperatorError
from .mathops import SIGMOID_CLAMP
from .mathops import sigmoid as _sigmoid

__all__ = [
    "OpKind",
    "Operator",
    "get_op",
    "register_op",
    "list_ops",
    "make_scal",
    "make_mlp_vop",
    "NOOP",
]


class OpKind:
    """Step names an operator may be used in (an operator may serve several)."""

    VOP = "vop"
    ROP = "rop"
    SOP = "sop"
    MOP = "mop"
    AOP = "aop"

    ALL = (VOP, ROP, SOP, MOP, AOP)


@dataclass(frozen=True)
class Operator:
    """A named FusedMM step operator.

    Attributes
    ----------
    name:
        Registry name (upper-case, e.g. ``"MUL"``).
    kinds:
        The steps this operator may legally occupy.
    edge_fn:
        Per-edge callable used by the reference kernel.  Signature depends
        on the step — see the module docstring of
        :mod:`repro.core.generic`.
    batch_fn:
        Vectorized callable used by the optimized kernels; same semantics
        with a leading neighbour/edge dimension.
    is_noop:
        True for the identity/pass-through operator.
    reduces:
        For ROP operators: True when the output is a scalar per edge.
    accumulator_identity:
        For AOP operators: the identity element used to initialise the
        output row (0 for sums, ``-inf`` for max, ``+inf`` for min).
    accumulate_ufunc:
        For AOP operators: the NumPy ufunc implementing the accumulation,
        used by the scatter-based whole-matrix kernels (``np.add`` /
        ``np.maximum`` / ``np.minimum``).
    params:
        Free-form parameter dict (e.g. the α of SCAL).
    """

    name: str
    kinds: tuple
    edge_fn: Callable
    batch_fn: Callable
    is_noop: bool = False
    reduces: bool = False
    accumulator_identity: Optional[float] = None
    accumulate_ufunc: Optional[np.ufunc] = None
    params: Dict[str, float] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Operator({self.name})"

    def allowed_in(self, kind: str) -> bool:
        """Whether this operator may occupy step ``kind``."""
        return kind in self.kinds


# ---------------------------------------------------------------------- #
# Registry
# ---------------------------------------------------------------------- #
_REGISTRY: Dict[str, Operator] = {}


def register_op(op: Operator, *, overwrite: bool = False) -> Operator:
    """Register ``op`` under ``op.name`` so patterns can refer to it by name.

    User-defined operators are first-class citizens: once registered, they
    can be used in :class:`repro.core.patterns.OpPattern` and executed by
    the generic and optimized backends exactly like the built-ins.
    """
    key = op.name.upper()
    if key in _REGISTRY and not overwrite:
        raise OperatorError(f"operator {key!r} is already registered")
    _REGISTRY[key] = op
    return op


def get_op(name_or_op) -> Operator:
    """Resolve an operator by name (case-insensitive) or pass through an
    :class:`Operator` instance."""
    if isinstance(name_or_op, Operator):
        return name_or_op
    if not isinstance(name_or_op, str):
        raise OperatorError(f"expected operator name or Operator, got {type(name_or_op)!r}")
    key = name_or_op.upper()
    if key not in _REGISTRY:
        raise OperatorError(
            f"unknown operator {name_or_op!r}; registered: {', '.join(sorted(_REGISTRY))}"
        )
    return _REGISTRY[key]


def list_ops(kind: str | None = None) -> list:
    """Names of registered operators, optionally filtered by step kind."""
    if kind is None:
        return sorted(_REGISTRY)
    return sorted(name for name, op in _REGISTRY.items() if op.allowed_in(kind))


# ---------------------------------------------------------------------- #
# Standard operators (Table II of the paper, plus application extras)
# ---------------------------------------------------------------------- #
# The numerically stable clipped sigmoid lives in repro.core.mathops so the
# registry, the hand-fused kernels, the code generator and the JIT backend
# all share one clamp definition.

NOOP = register_op(
    Operator(
        name="NOOP",
        kinds=OpKind.ALL,
        edge_fn=lambda *args: args[0] if args else None,
        batch_fn=lambda *args: args[0] if args else None,
        is_noop=True,
    )
)

# --- Binary element-wise operators (VOP / MOP) ------------------------- #
register_op(
    Operator(
        name="ADD",
        kinds=(OpKind.VOP, OpKind.MOP),
        edge_fn=lambda x, y, a=None, w=None: x + y,
        batch_fn=lambda x, y, a=None, w=None: x + y,
    )
)

register_op(
    Operator(
        name="SUB",
        kinds=(OpKind.VOP, OpKind.MOP),
        edge_fn=lambda x, y, a=None, w=None: x - y,
        batch_fn=lambda x, y, a=None, w=None: x - y,
    )
)

register_op(
    Operator(
        name="MUL",
        kinds=(OpKind.VOP, OpKind.MOP),
        edge_fn=lambda x, y, a=None, w=None: x * y,
        batch_fn=lambda x, y, a=None, w=None: _mul_broadcast(x, y),
    )
)

def _sel1st_batch(x, y, a=None, w=None):
    """Batched SEL1ST.  Used as VOP it broadcasts the (single) source
    vector over the neighbour dimension; used as MOP on a per-edge scalar
    message it passes the scalars through unchanged."""
    x_arr = np.asarray(x)
    y_arr = np.asarray(y)
    if x_arr.ndim < y_arr.ndim:
        if x_arr.ndim >= 1 and x_arr.shape[0] == y_arr.shape[0]:
            return x_arr
        return np.broadcast_to(x_arr, y_arr.shape).copy()
    return x_arr


register_op(
    Operator(
        name="SEL1ST",
        kinds=(OpKind.VOP, OpKind.MOP),
        edge_fn=lambda x, y, a=None, w=None: x if np.ndim(x) else np.asarray(x),
        batch_fn=_sel1st_batch,
    )
)

register_op(
    Operator(
        name="SEL2ND",
        kinds=(OpKind.VOP, OpKind.MOP),
        edge_fn=lambda x, y, a=None, w=None: y,
        batch_fn=lambda x, y, a=None, w=None: y,
    )
)

register_op(
    Operator(
        name="EDGESCALE",
        kinds=(OpKind.VOP, OpKind.MOP),
        # Scale the message by the edge value a_uv.  This is what the paper
        # calls "MUL for MOP" in the GCN row of Table III: messages are
        # multiplied by edge features before pooling.
        edge_fn=lambda x, y, a=None, w=None: (1.0 if a is None else a) * _first_vector(x, y),
        batch_fn=lambda x, y, a=None, w=None: _edge_scale_batch(x, y, a),
    )
)

register_op(
    Operator(
        name="MULDIFF",
        kinds=(OpKind.MOP,),
        # Multiply the (scalar) message by the VOP output w — needed by the
        # force-directed layout pattern where the aggregated direction is
        # (x_u - x_v), i.e. the VOP output, not y_v.
        edge_fn=lambda h, y, a=None, w=None: h * (w if w is not None else y),
        batch_fn=lambda h, y, a=None, w=None: _mul_broadcast(h, w if w is not None else y),
    )
)

# --- Unary scaling operators (SOP / MOP) -------------------------------- #
register_op(
    Operator(
        name="SIGMOID",
        kinds=(OpKind.SOP, OpKind.MOP),
        edge_fn=lambda x, *rest: _sigmoid(x),
        batch_fn=lambda x, *rest: _sigmoid(x),
    )
)

register_op(
    Operator(
        name="RELU",
        kinds=(OpKind.SOP, OpKind.MOP),
        edge_fn=lambda x, *rest: np.maximum(x, 0.0),
        batch_fn=lambda x, *rest: np.maximum(x, 0.0),
    )
)

register_op(
    Operator(
        name="TANH",
        kinds=(OpKind.SOP, OpKind.MOP),
        edge_fn=lambda x, *rest: np.tanh(x),
        batch_fn=lambda x, *rest: np.tanh(x),
    )
)

register_op(
    Operator(
        name="EXP",
        kinds=(OpKind.SOP, OpKind.MOP),
        edge_fn=lambda x, *rest: np.exp(np.clip(x, -SIGMOID_CLAMP, SIGMOID_CLAMP)),
        batch_fn=lambda x, *rest: np.exp(np.clip(x, -SIGMOID_CLAMP, SIGMOID_CLAMP)),
    )
)

register_op(
    Operator(
        name="TDIST",
        kinds=(OpKind.SOP,),
        # Student-t kernel 1 / (1 + s^2) used by t-SNE-style layout forces.
        edge_fn=lambda x, *rest: 1.0 / (1.0 + np.square(x)),
        batch_fn=lambda x, *rest: 1.0 / (1.0 + np.square(x)),
    )
)


def make_scal(alpha: float, name: str | None = None, *, register: bool = False) -> Operator:
    """Create a SCAL operator multiplying its input by the constant ``alpha``
    (Table II's SCAL).  Optionally register it under ``name``."""
    op = Operator(
        name=name or f"SCAL[{alpha:g}]",
        kinds=(OpKind.SOP, OpKind.MOP),
        edge_fn=lambda x, *rest, _a=alpha: _a * x,
        batch_fn=lambda x, *rest, _a=alpha: _a * x,
        params={"alpha": float(alpha)},
    )
    if register:
        register_op(op, overwrite=True)
    return op


# A default unit-scale SCAL so patterns can name "SCAL" directly.
register_op(
    Operator(
        name="SCAL",
        kinds=(OpKind.SOP, OpKind.MOP),
        edge_fn=lambda x, *rest: 1.0 * x,
        batch_fn=lambda x, *rest: 1.0 * x,
        params={"alpha": 1.0},
    )
)

# --- Reduction operators (ROP) ------------------------------------------ #
register_op(
    Operator(
        name="RSUM",
        kinds=(OpKind.ROP,),
        edge_fn=lambda w: np.sum(w, axis=-1),
        batch_fn=lambda w: np.sum(w, axis=-1),
        reduces=True,
    )
)

register_op(
    Operator(
        name="RMUL",
        kinds=(OpKind.ROP,),
        edge_fn=lambda w: np.prod(w, axis=-1),
        batch_fn=lambda w: np.prod(w, axis=-1),
        reduces=True,
    )
)

register_op(
    Operator(
        name="RMAX",
        kinds=(OpKind.ROP,),
        edge_fn=lambda w: np.max(w, axis=-1),
        batch_fn=lambda w: np.max(w, axis=-1),
        reduces=True,
    )
)

register_op(
    Operator(
        name="NORM",
        kinds=(OpKind.ROP,),
        # Note: the paper points out its ASUM/NORM differ from L1 BLAS; this
        # is the Euclidean norm of the VOP output.
        edge_fn=lambda w: np.sqrt(np.sum(np.square(w), axis=-1)),
        batch_fn=lambda w: np.sqrt(np.sum(np.square(w), axis=-1)),
        reduces=True,
    )
)

# --- Accumulation operators (AOP) ---------------------------------------- #
register_op(
    Operator(
        name="ASUM",
        kinds=(OpKind.AOP,),
        edge_fn=lambda z, w: z + w,
        batch_fn=lambda z, w_block: z + np.sum(w_block, axis=0),
        accumulator_identity=0.0,
        accumulate_ufunc=np.add,
    )
)

register_op(
    Operator(
        name="AMAX",
        kinds=(OpKind.AOP,),
        edge_fn=lambda z, w: np.maximum(z, w),
        batch_fn=lambda z, w_block: np.maximum(z, np.max(w_block, axis=0))
        if np.shape(w_block)[0]
        else z,
        accumulator_identity=-np.inf,
        accumulate_ufunc=np.maximum,
    )
)

register_op(
    Operator(
        name="AMIN",
        kinds=(OpKind.AOP,),
        edge_fn=lambda z, w: np.minimum(z, w),
        batch_fn=lambda z, w_block: np.minimum(z, np.min(w_block, axis=0))
        if np.shape(w_block)[0]
        else z,
        accumulator_identity=np.inf,
        accumulate_ufunc=np.minimum,
    )
)


# ---------------------------------------------------------------------- #
# User-defined operator helpers
# ---------------------------------------------------------------------- #
def make_mlp_vop(
    weight1: np.ndarray,
    weight2: np.ndarray | None = None,
    *,
    name: str = "MLP",
    register: bool = False,
) -> Operator:
    """Build the MLP message operator of the GNN pattern (Table III row 4).

    The message on edge ``(u, v)`` is ``MLP([x_u ; y_v])``: the two feature
    vectors are concatenated, passed through one (or two) dense layers with
    ReLU, and the output is a d-dimensional vector message.

    Parameters
    ----------
    weight1:
        ``(2d, hidden)`` dense weight of the first layer.
    weight2:
        Optional ``(hidden, d)`` weight of the second layer.  When omitted
        the first layer must map ``2d -> d`` directly.
    """
    w1 = np.ascontiguousarray(weight1, dtype=np.float32)
    w2 = None if weight2 is None else np.ascontiguousarray(weight2, dtype=np.float32)

    def _edge(x, y, a=None, w=None, _w1=w1, _w2=w2):
        concat = np.concatenate([np.atleast_1d(x), np.atleast_1d(y)], axis=-1)
        hidden = np.maximum(concat @ _w1, 0.0)
        return hidden if _w2 is None else hidden @ _w2

    def _batch(x, y, a=None, w=None, _w1=w1, _w2=w2):
        x_b = np.broadcast_to(x, np.shape(y)) if np.ndim(x) < np.ndim(y) else x
        concat = np.concatenate([x_b, y], axis=-1)
        hidden = np.maximum(concat @ _w1, 0.0)
        return hidden if _w2 is None else hidden @ _w2

    op = Operator(name=name, kinds=(OpKind.VOP,), edge_fn=_edge, batch_fn=_batch)
    if register:
        register_op(op, overwrite=True)
    return op


# ---------------------------------------------------------------------- #
# Broadcasting helpers shared by the standard operators
# ---------------------------------------------------------------------- #
def _mul_broadcast(h, y):
    """Multiply a message (scalar-per-edge or vector-per-edge) with a
    per-edge vector, inserting the trailing axis when needed."""
    h_arr = np.asarray(h)
    y_arr = np.asarray(y)
    if h_arr.ndim == y_arr.ndim - 1:
        return h_arr[..., None] * y_arr
    return h_arr * y_arr


def _first_vector(x, y):
    """Pick the message operand for EDGESCALE: the first argument when it is
    vector-like, otherwise the second (neighbour features)."""
    return x if np.ndim(x) >= 1 else y


def _edge_scale_batch(h, y, a):
    """Batched EDGESCALE: multiply the message by the per-edge value."""
    if a is None:
        return _mul_broadcast(h, y) if np.ndim(h) < np.ndim(y) else np.asarray(h)
    a_arr = np.asarray(a)
    msg = h if np.ndim(h) >= np.ndim(y) else y
    msg = np.asarray(msg)
    if a_arr.ndim == msg.ndim - 1:
        return a_arr[..., None] * msg
    return a_arr * msg
