"""Hand-specialized fused kernels for the known patterns of Table III.

Section IV of the paper explains that when the five operators match a known
pattern — e.g. (MUL, RSUM, SIGMOID, MUL, ASUM) for sigmoid graph embedding —
the library dispatches a kernel in which the steps are fused into a single
pass with no per-step temporaries and architecture-tuned intrinsics.  The
Python analogue below fuses the steps into single NumPy expressions
(``einsum`` for the dot products, fused multiply-accumulate via in-place
updates) per edge block or row, eliminating the operator-dispatch overhead
of the general :mod:`repro.core.optimized` kernels.

Available specializations (mirroring the first three rows of Table III plus
the SpMM specialisation used in the MKL comparison):

* :func:`sigmoid_embedding_kernel` — ``z_u = Σ_v σ(x_u·y_v) · y_v``
* :func:`fr_layout_kernel`        — ``z_u = Σ_v f(‖x_u−y_v‖) · (x_u−y_v)``
* :func:`spmm_kernel`             — ``Z = A · Y`` (also the GCN aggregation)
* :func:`gcn_kernel`              — alias of :func:`spmm_kernel`

:func:`get_specialized_kernel` maps a resolved pattern to its specialization
(or ``None`` when there is none), which is how the top-level dispatcher in
:mod:`repro.core.fused` selects them automatically.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Optional, Sequence

import numpy as np

from .mathops import sigmoid as _sigmoid
from .optimized import (
    DEFAULT_BLOCK_SIZE,
    _alloc_accumulator,
    _edge_block_ranges,
    _finalize_output,
    _window_parts,
)
from .parallel import ParallelConfig, run_partitioned
from .partition import RowPartition
from .patterns import ResolvedPattern
from .validation import resolve_out_window, validate_operands

__all__ = [
    "sigmoid_embedding_kernel",
    "fr_layout_kernel",
    "spmm_kernel",
    "gcn_kernel",
    "get_specialized_kernel",
]


def sigmoid_embedding_kernel(
    A,
    X,
    Y=None,
    *,
    block_size: int = DEFAULT_BLOCK_SIZE,
    num_threads: int = 1,
    parts_per_thread: int = 1,
    parts: Optional[Sequence[RowPartition]] = None,
    pool: Optional[ThreadPoolExecutor] = None,
    out: Optional[np.ndarray] = None,
    row_offset: int = 0,
) -> np.ndarray:
    """Fused sigmoid-embedding kernel: ``z_u = Σ_v σ(x_uᵀ y_v) y_v``.

    This is the kernel of Fig. 5: the dot product (VOP+ROP), the sigmoid
    (SOP) and the scaled accumulation (MOP+AOP) happen in one pass over each
    edge block, so the only intermediates are the ``(k,)`` scores of the
    current block.
    """
    A, X, Y = validate_operands(A, X, Y)
    m, d = X.shape
    w0, w1 = resolve_out_window(out, row_offset, m, d)
    parts = _window_parts(
        A, w0, w1, parts, ParallelConfig(num_threads, parts_per_thread).num_parts
    )
    Z = _alloc_accumulator(out, w0, w1, d, 0.0)
    indptr, indices, data = A.indptr, A.indices, A.data
    edge_rows = np.repeat(np.arange(m, dtype=np.int64), A.row_degrees())

    def kernel(part: RowPartition, z_slice: np.ndarray) -> None:
        lo, hi = int(indptr[part.start]), int(indptr[part.stop])
        for e0, e1 in _edge_block_ranges(lo, hi, block_size):
            src = edge_rows[e0:e1]
            dst = indices[e0:e1]
            Yd = Y[dst]
            # VOP + ROP fused into one einsum (the "dot1/dot2" of Fig. 5).
            scores = np.einsum("ij,ij->i", X[src], Yd)
            h = _sigmoid(scores)
            # MOP + AOP fused: scale rows of Yd and segment-sum into Z.
            contrib = h[:, None] * Yd
            change = np.flatnonzero(np.diff(src)) + 1
            starts = np.concatenate(([0], change))
            seg_rows = src[starts] - part.start
            z_slice[seg_rows] += np.add.reduceat(contrib, starts, axis=0)

    run_partitioned(
        A, Z, kernel, config=ParallelConfig(num_threads, parts_per_thread),
        parts=parts, pool=pool, row_offset=w0,
    )
    return _finalize_output(Z, out, X.dtype)


def fr_layout_kernel(
    A,
    X,
    Y=None,
    *,
    block_size: int = DEFAULT_BLOCK_SIZE,
    num_threads: int = 1,
    parts_per_thread: int = 1,
    parts: Optional[Sequence[RowPartition]] = None,
    pool: Optional[ThreadPoolExecutor] = None,
    out: Optional[np.ndarray] = None,
    row_offset: int = 0,
) -> np.ndarray:
    """Fused force-directed-layout kernel (attractive forces):
    ``z_u = Σ_v 1/(1+‖x_u−y_v‖²) · (x_u−y_v)``.

    The per-edge message here is a *d-dimensional vector*, which is exactly
    the case where the unfused pipeline's intermediate H costs ``nnz × d``
    floats (the out-of-memory column of Table VI and Fig. 10b); the fused
    kernel keeps only one block of differences alive at a time.
    """
    A, X, Y = validate_operands(A, X, Y)
    m, d = X.shape
    w0, w1 = resolve_out_window(out, row_offset, m, d)
    parts = _window_parts(
        A, w0, w1, parts, ParallelConfig(num_threads, parts_per_thread).num_parts
    )
    Z = _alloc_accumulator(out, w0, w1, d, 0.0)
    indptr, indices, data = A.indptr, A.indices, A.data
    edge_rows = np.repeat(np.arange(m, dtype=np.int64), A.row_degrees())

    def kernel(part: RowPartition, z_slice: np.ndarray) -> None:
        lo, hi = int(indptr[part.start]), int(indptr[part.stop])
        for e0, e1 in _edge_block_ranges(lo, hi, block_size):
            src = edge_rows[e0:e1]
            dst = indices[e0:e1]
            diff = X[src] - Y[dst]
            dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
            force = 1.0 / (1.0 + np.square(dist))
            contrib = force[:, None] * diff
            change = np.flatnonzero(np.diff(src)) + 1
            starts = np.concatenate(([0], change))
            seg_rows = src[starts] - part.start
            z_slice[seg_rows] += np.add.reduceat(contrib, starts, axis=0)

    run_partitioned(
        A, Z, kernel, config=ParallelConfig(num_threads, parts_per_thread),
        parts=parts, pool=pool, row_offset=w0,
    )
    return _finalize_output(Z, out, X.dtype)


def spmm_kernel(
    A,
    Y,
    *,
    block_size: int = DEFAULT_BLOCK_SIZE,
    num_threads: int = 1,
    parts_per_thread: int = 1,
    parts: Optional[Sequence[RowPartition]] = None,
    pool: Optional[ThreadPoolExecutor] = None,
    out: Optional[np.ndarray] = None,
    row_offset: int = 0,
) -> np.ndarray:
    """SpMM specialisation of FusedMM: ``Z = A · Y``.

    This is the kernel compared against MKL in Table VII and the
    aggregation used by GCN (Table III row 3).  Note it takes only ``A``
    and ``Y`` — the GCN pattern ignores the source features entirely.
    """
    from ..sparse import as_csr

    A = as_csr(A)
    Y = np.ascontiguousarray(Y)
    if Y.ndim != 2 or Y.shape[0] != A.ncols:
        raise ValueError(
            f"Y must have shape ({A.ncols}, d) for A of shape {A.shape}, got {Y.shape}"
        )
    m = A.nrows
    w0, w1 = resolve_out_window(out, row_offset, m, Y.shape[1])
    parts = _window_parts(
        A, w0, w1, parts, ParallelConfig(num_threads, parts_per_thread).num_parts
    )
    Z = _alloc_accumulator(out, w0, w1, Y.shape[1], 0.0)
    indptr, indices, data = A.indptr, A.indices, A.data
    edge_rows = np.repeat(np.arange(m, dtype=np.int64), A.row_degrees())

    def kernel(part: RowPartition, z_slice: np.ndarray) -> None:
        lo, hi = int(indptr[part.start]), int(indptr[part.stop])
        for e0, e1 in _edge_block_ranges(lo, hi, block_size):
            src = edge_rows[e0:e1]
            dst = indices[e0:e1]
            vals = data[e0:e1]
            contrib = vals[:, None] * Y[dst]
            change = np.flatnonzero(np.diff(src)) + 1
            starts = np.concatenate(([0], change))
            seg_rows = src[starts] - part.start
            z_slice[seg_rows] += np.add.reduceat(contrib, starts, axis=0)

    run_partitioned(
        A, Z, kernel, config=ParallelConfig(num_threads, parts_per_thread),
        parts=parts, pool=pool, row_offset=w0,
    )
    return _finalize_output(
        Z, out, Y.dtype if np.issubdtype(Y.dtype, np.floating) else np.float32
    )


def gcn_kernel(
    A,
    X,
    Y=None,
    *,
    block_size: int = DEFAULT_BLOCK_SIZE,
    num_threads: int = 1,
    parts_per_thread: int = 1,
    parts: Optional[Sequence[RowPartition]] = None,
    pool: Optional[ThreadPoolExecutor] = None,
    out: Optional[np.ndarray] = None,
    row_offset: int = 0,
) -> np.ndarray:
    """GCN aggregation specialisation — identical math to :func:`spmm_kernel`
    but with the standard (A, X, Y) FusedMM signature so the dispatcher can
    call it interchangeably with the other specializations."""
    A_csr, X_arr, Y_arr = validate_operands(A, X, Y)
    Z = spmm_kernel(
        A_csr,
        Y_arr,
        block_size=block_size,
        num_threads=num_threads,
        parts_per_thread=parts_per_thread,
        parts=parts,
        pool=pool,
        out=out,
        row_offset=row_offset,
    )
    return Z.astype(X_arr.dtype) if out is None else Z


def get_specialized_kernel(pattern: ResolvedPattern) -> Optional[Callable]:
    """Return the specialized kernel for a resolved pattern, or ``None``.

    The mapping mirrors Section IV: the library recognises the op tuples of
    the first three rows of Table III and substitutes its tuned kernels;
    everything else falls back to the general optimized implementation.
    """
    if pattern.is_sigmoid_embedding:
        return sigmoid_embedding_kernel
    if pattern.is_fr_layout:
        return fr_layout_kernel
    if pattern.is_spmm_like:
        return gcn_kernel
    return None
