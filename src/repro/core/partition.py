"""1-D nnz-balanced partitioning (PART1D, Algorithm 1 line 2 / Fig. 4).

FusedMM partitions the rows of ``A`` (and with them the rows of ``X`` and
``Z``) into ``t`` contiguous blocks so that each block holds roughly
``nnz(A) / t`` nonzeros.  Threads then process blocks independently:
concurrent reads of ``Y`` are allowed, writes never overlap because every
output row belongs to exactly one block.

The paper argues (Section III.C) that 2-D (edge) partitioning is either
impossible (the sigmoid of a partial dot product is not the sigmoid of the
full dot product) or inefficient (partially aggregated results must be
stored and merged), which is why only 1-D partitioning is provided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..errors import PartitionError
from ..sparse import CSRMatrix

__all__ = ["RowPartition", "part1d", "partition_balance"]


@dataclass(frozen=True)
class RowPartition:
    """A contiguous block of rows assigned to one thread.

    Attributes
    ----------
    start, stop:
        Row range ``[start, stop)`` of this partition.
    nnz:
        Number of nonzeros in the partition (its computational weight,
        since FusedMM does O(d) work per nonzero).
    """

    start: int
    stop: int
    nnz: int

    @property
    def num_rows(self) -> int:
        """Number of rows in the partition."""
        return self.stop - self.start

    def __len__(self) -> int:  # pragma: no cover - convenience
        return self.num_rows


def part1d(A: CSRMatrix | np.ndarray, num_parts: int) -> List[RowPartition]:
    """Split the rows of ``A`` into ``num_parts`` contiguous, nnz-balanced
    partitions.

    Parameters
    ----------
    A:
        A CSR matrix, or directly its ``indptr`` array.
    num_parts:
        Number of partitions (threads).  May exceed the number of rows, in
        which case trailing partitions are empty.

    Returns
    -------
    list of :class:`RowPartition`
        Exactly ``num_parts`` entries covering ``[0, m)`` without gaps or
        overlaps, in row order.

    Notes
    -----
    The implementation scans the row-pointer array once (O(m), as stated in
    the paper) using ``searchsorted`` on evenly spaced nnz targets, then
    fixes up degenerate cases (empty matrix, huge single rows) so the cover
    invariant always holds.
    """
    if isinstance(A, CSRMatrix):
        indptr = A.indptr
    else:
        indptr = np.asarray(A, dtype=np.int64)
        if indptr.ndim != 1 or indptr.shape[0] == 0:
            raise PartitionError("indptr must be a non-empty 1-D array")
    if num_parts <= 0:
        raise PartitionError(f"num_parts must be positive, got {num_parts}")

    m = indptr.shape[0] - 1
    total_nnz = int(indptr[-1])

    # Target cumulative nnz at each partition boundary.
    targets = (np.arange(1, num_parts, dtype=np.float64) * total_nnz) / num_parts
    # For each target find the smallest row boundary whose cumulative nnz
    # reaches it.  searchsorted on indptr gives exactly that.
    cuts = np.searchsorted(indptr, targets, side="left").astype(np.int64)
    cuts = np.clip(cuts, 0, m)
    boundaries = np.concatenate(([0], cuts, [m]))
    # Boundaries must be non-decreasing; enforce monotonicity (can be
    # violated when single rows hold more than nnz/num_parts nonzeros).
    boundaries = np.maximum.accumulate(boundaries)

    parts: List[RowPartition] = []
    for i in range(num_parts):
        start, stop = int(boundaries[i]), int(boundaries[i + 1])
        nnz = int(indptr[stop] - indptr[start])
        parts.append(RowPartition(start=start, stop=stop, nnz=nnz))
    return parts


def partition_balance(parts: Sequence[RowPartition]) -> float:
    """Load-balance factor of a partitioning: ``max part nnz / mean part
    nnz`` over non-empty parts.  1.0 is perfect balance; the value is large
    when a single heavy row dominates (which 1-D partitioning cannot
    split — the documented limitation of the scheme)."""
    if not parts:
        raise PartitionError("empty partition list")
    sizes = np.asarray([p.nnz for p in parts], dtype=np.float64)
    total = sizes.sum()
    if total == 0:
        return 1.0
    nonzero_parts = max(1, int(np.count_nonzero(sizes)))
    mean = total / len(sizes) if len(sizes) <= nonzero_parts else total / nonzero_parts
    return float(sizes.max() / max(mean, 1e-12))
