"""Vectorized FusedMM kernels (the paper's "FusedMMopt").

The paper obtains its optimized kernel by (a) register-blocking ``x_u`` and
``z_u`` in SIMD registers, (b) streaming the neighbour vectors ``y_v``
through the registers, and (c) writing ``z_u`` once per row with
non-temporal stores (Section IV.A, Fig. 5).  The Python analogue of those
three ideas is *blocking*:

* **Row-blocked kernel** (:func:`fusedmm_rowblocked`): for each output row,
  all neighbour features are gathered into one ``(k, d)`` array and the
  five steps run as single vectorized NumPy expressions over that array.
  ``x_u``/``z_u`` stay in cache for the whole row — the direct analogue of
  register-blocking them — and ``Z`` is written exactly once per row.
  Best when the average degree is high (Ogbprot., Orkut, Harvard).

* **Edge-blocked kernel** (:func:`fusedmm_edgeblocked`): edges are processed
  in fixed-size blocks; for each block the source and destination features
  are gathered, the five steps run vectorized over the block, and the block
  results are segment-reduced into ``Z`` using the CSR ordering (edges of
  the same row are contiguous, so ``np.ufunc.reduceat`` on the row-change
  boundaries does the aggregation without materialising anything larger
  than the block).  The intermediate footprint is ``O(block_size × d)``
  **independent of nnz** — this is what preserves the paper's memory-

  advantage claim (Fig. 10b) relative to the unfused baselines, which hold
  the full ``nnz × d`` message matrix H.  Best for low-degree graphs
  (Youtube, Amazon, Pubmed) where per-row vectorization is too short.

Both kernels accept any operator pattern via the registry's batched
callables, run over 1-D nnz-balanced partitions, and are property-tested
against the reference kernel of :mod:`repro.core.generic`.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Sequence

import numpy as np

from .operators import Operator
from .parallel import ParallelConfig, run_partitioned
from .partition import RowPartition
from .patterns import OpPattern, ResolvedPattern, get_pattern
from .validation import resolve_out_window, validate_operands

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "fusedmm_rowblocked",
    "fusedmm_edgeblocked",
    "fusedmm_optimized",
]


# ---------------------------------------------------------------------- #
# Shared ``out=``/``row_offset=`` plumbing
# ---------------------------------------------------------------------- #
def _window_parts(A, w0: int, w1: int, parts, num_parts: int = 1):
    """The partition list for a windowed call: the caller's, or an
    nnz-balanced split of exactly the window rows (``None`` keeps the
    kernel's default full-matrix partitioning).

    The window is split into up to ``num_parts`` contiguous pieces so a
    windowed ``out=`` call still fans out over the thread pool.  Any row
    partitioning yields bitwise-identical results (edge blocks align to
    the absolute edge grid), so the split count is free to follow the
    thread count here.
    """
    if parts is not None:
        return parts
    if w0 == 0 and w1 == A.nrows:
        return None
    indptr = A.indptr
    nnz_lo, nnz_hi = int(indptr[w0]), int(indptr[w1])
    total = nnz_hi - nnz_lo
    n = max(1, min(int(num_parts), w1 - w0))
    bounds = [w0]
    for i in range(1, n):
        target = nnz_lo + (total * i) // n
        cut = int(np.searchsorted(indptr, target, side="left"))
        bounds.append(min(max(cut, bounds[-1]), w1))
    bounds.append(w1)
    return [
        RowPartition(a, b, int(indptr[b] - indptr[a]))
        for a, b in zip(bounds, bounds[1:])
        if b > a
    ]


def _alloc_accumulator(out, w0: int, w1: int, d: int, identity: float) -> np.ndarray:
    """The float64 accumulation buffer for the window ``[w0, w1)``.

    When ``out`` itself is a contiguous float64 array it is used directly
    (zero extra allocation); otherwise a window-sized scratch is created —
    never a full ``(nrows, d)`` matrix.  Accumulating in float64 and
    casting once at the end is what keeps ``out=`` results bitwise equal
    to the plain path.
    """
    if out is not None and out.dtype == np.float64 and out.flags["C_CONTIGUOUS"]:
        out[...] = identity
        return out
    if identity == 0.0:
        return np.zeros((w1 - w0, d), dtype=np.float64)
    return np.full((w1 - w0, d), identity, dtype=np.float64)


def _finalize_output(Z: np.ndarray, out, result_dtype) -> np.ndarray:
    """Cast the float64 accumulator into ``out`` (or a fresh result)."""
    if out is None:
        return Z.astype(result_dtype)
    if Z is not out:
        out[...] = Z
    return out


#: Default number of edges per block for the edge-blocked kernel.  Chosen so
#: a block of d=128 single-precision messages (~4 MB) fits in the last-level
#: cache of the machines in Table IV; the autotuner refines it per problem.
DEFAULT_BLOCK_SIZE = 8192


# ---------------------------------------------------------------------- #
# Shared step executor (batched)
# ---------------------------------------------------------------------- #
def _run_steps_batch(
    pattern: ResolvedPattern,
    Xs: np.ndarray,
    Yd: np.ndarray,
    vals: np.ndarray,
) -> np.ndarray:
    """Run VOP → ROP → SOP → MOP over a batch of edges.

    ``Xs`` and ``Yd`` are the gathered ``(k, d)`` source/destination feature
    blocks (``Xs`` may be a single ``(d,)`` vector in the row-blocked
    kernel, which broadcasts), ``vals`` the ``(k,)`` edge values.  Returns
    the per-edge messages ``M`` with shape ``(k, d)`` or ``(k,)``.
    """
    vop, rop, sop, mop = pattern.vop, pattern.rop, pattern.sop, pattern.mop
    W = Yd if vop.is_noop else vop.batch_fn(Xs, Yd, vals)
    S = W if rop.is_noop else rop.batch_fn(W)
    H = S if sop.is_noop else sop.batch_fn(S)
    M = H if mop.is_noop else mop.batch_fn(H, Yd, vals, W)
    return M


def _accumulate_rowwise(aop: Operator, out_row: np.ndarray, M: np.ndarray) -> None:
    """Reduce the per-edge messages of one row into its output row."""
    if M.ndim == 1:
        # Scalar messages broadcast over the feature dimension.
        M = M[:, None]
    if aop.name == "ASUM":
        out_row += M.sum(axis=0)
    else:
        out_row[...] = aop.batch_fn(out_row, M)


# ---------------------------------------------------------------------- #
# Row-blocked kernel
# ---------------------------------------------------------------------- #
def fusedmm_rowblocked(
    A,
    X,
    Y=None,
    *,
    pattern: OpPattern | str = "sigmoid_embedding",
    num_threads: int = 1,
    parts_per_thread: int = 1,
    parts: Optional[Sequence[RowPartition]] = None,
    pool: Optional[ThreadPoolExecutor] = None,
    out: Optional[np.ndarray] = None,
    row_offset: int = 0,
    **pattern_overrides,
) -> np.ndarray:
    """FusedMM with per-row vectorization (register-blocking analogue)."""
    A, X, Y = validate_operands(A, X, Y)
    resolved = get_pattern(pattern, **pattern_overrides).resolved()
    m, d = X.shape
    w0, w1 = resolve_out_window(out, row_offset, m, d)
    parts = _window_parts(
        A, w0, w1, parts, ParallelConfig(num_threads, parts_per_thread).num_parts
    )
    Z = _alloc_accumulator(out, w0, w1, d, 0.0)
    identity = resolved.aop.accumulator_identity
    indptr, indices, data = A.indptr, A.indices, A.data

    def kernel(part: RowPartition, z_slice: np.ndarray) -> None:
        for u in range(part.start, part.stop):
            lo, hi = indptr[u], indptr[u + 1]
            if lo == hi:
                continue
            cols = indices[lo:hi]
            vals = data[lo:hi]
            Yd = Y[cols]
            # Broadcast x_u over the neighbour dimension so every step sees
            # unambiguous (k, d) operands (a bare (d,) vector would be
            # indistinguishable from a (k,) per-edge scalar when k == d).
            Xs = np.broadcast_to(X[u], Yd.shape)
            M = _run_steps_batch(resolved, Xs, Yd, vals)
            row = z_slice[u - part.start]
            if identity not in (0.0, None):
                row[...] = identity
            _accumulate_rowwise(resolved.aop, row, np.atleast_1d(M))

    run_partitioned(
        A, Z, kernel, config=ParallelConfig(num_threads, parts_per_thread),
        parts=parts, pool=pool, row_offset=w0,
    )
    return _finalize_output(Z, out, X.dtype)


# ---------------------------------------------------------------------- #
# Edge-blocked kernel
# ---------------------------------------------------------------------- #
def _edge_block_ranges(lo: int, hi: int, block_size: int):
    """Yield ``[start, stop)`` edge ranges of at most ``block_size`` edges.

    Block boundaries are aligned to the *absolute* edge grid (multiples of
    ``block_size``), not to ``lo``: a row's edges are therefore chunked
    identically no matter which partition it lands in, which is what makes
    the partition-parallel results bitwise identical across thread counts
    (the invariant promised in :mod:`repro.core.parallel`).  For ``lo == 0``
    this is the plain fixed-size chunking.
    """
    start = lo
    while start < hi:
        stop = min((start // block_size + 1) * block_size, hi)
        yield start, stop
        start = stop


def fusedmm_edgeblocked(
    A,
    X,
    Y=None,
    *,
    pattern: OpPattern | str = "sigmoid_embedding",
    block_size: int = DEFAULT_BLOCK_SIZE,
    num_threads: int = 1,
    parts_per_thread: int = 1,
    parts: Optional[Sequence[RowPartition]] = None,
    pool: Optional[ThreadPoolExecutor] = None,
    out: Optional[np.ndarray] = None,
    row_offset: int = 0,
    **pattern_overrides,
) -> np.ndarray:
    """FusedMM processing edges in fixed-size blocks with segment reduction.

    The intermediate arrays never exceed ``block_size × d`` elements, so the
    memory footprint stays flat in nnz and in d per block — the fused-kernel
    property the paper exploits (Section II, "The need for a fused kernel").
    """
    A, X, Y = validate_operands(A, X, Y)
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    resolved = get_pattern(pattern, **pattern_overrides).resolved()
    m, d = X.shape
    w0, w1 = resolve_out_window(out, row_offset, m, d)
    parts = _window_parts(
        A, w0, w1, parts, ParallelConfig(num_threads, parts_per_thread).num_parts
    )
    identity = resolved.aop.accumulator_identity
    aop_ufunc = resolved.aop.accumulate_ufunc
    use_sum = resolved.aop.name == "ASUM"
    Z = _alloc_accumulator(out, w0, w1, d, 0.0 if use_sum else identity)
    indptr, indices, data = A.indptr, A.indices, A.data
    # Row id of every edge, computed once: CSR guarantees these are sorted.
    edge_rows = np.repeat(np.arange(m, dtype=np.int64), A.row_degrees())

    def kernel(part: RowPartition, z_slice: np.ndarray) -> None:
        lo, hi = int(indptr[part.start]), int(indptr[part.stop])
        for e0, e1 in _edge_block_ranges(lo, hi, block_size):
            src = edge_rows[e0:e1]
            dst = indices[e0:e1]
            vals = data[e0:e1]
            Xs = X[src]
            Yd = Y[dst]
            M = _run_steps_batch(resolved, Xs, Yd, vals)
            M = np.atleast_1d(M)
            if M.ndim == 1:
                M = M[:, None]
            # Segment-reduce the block: edges of the same row are contiguous.
            change = np.flatnonzero(np.diff(src)) + 1
            starts = np.concatenate(([0], change))
            seg_rows = src[starts] - part.start
            if use_sum:
                seg = np.add.reduceat(M, starts, axis=0)
                z_slice[seg_rows] += seg
            else:
                seg = aop_ufunc.reduceat(M, starts, axis=0)
                z_slice[seg_rows] = aop_ufunc(z_slice[seg_rows], seg)

    run_partitioned(
        A, Z, kernel, config=ParallelConfig(num_threads, parts_per_thread),
        parts=parts, pool=pool, row_offset=w0,
    )
    if not use_sum:
        # Rows that never received a message hold the accumulator identity
        # (±inf); normalise them to zero like every other backend.
        empty = A.row_degrees()[w0:w1] == 0
        if np.any(empty):
            Z[empty] = 0.0
    return _finalize_output(Z, out, X.dtype)


# ---------------------------------------------------------------------- #
# Strategy dispatcher
# ---------------------------------------------------------------------- #
def fusedmm_optimized(
    A,
    X,
    Y=None,
    *,
    pattern: OpPattern | str = "sigmoid_embedding",
    strategy: str = "auto",
    block_size: Optional[int] = None,
    num_threads: int = 1,
    parts_per_thread: int = 1,
    parts: Optional[Sequence[RowPartition]] = None,
    pool: Optional[ThreadPoolExecutor] = None,
    out: Optional[np.ndarray] = None,
    row_offset: int = 0,
    **pattern_overrides,
) -> np.ndarray:
    """Vectorized FusedMM choosing between the row-blocked and edge-blocked
    kernels.

    Parameters
    ----------
    strategy:
        ``"row"``, ``"edge"`` or ``"auto"`` (pick edge-blocking when the
        average degree is below 32 — short rows make per-row vectorization
        ineffective, mirroring the paper's observation that dense graphs
        amortise memory latency better).
    block_size:
        Edge-block size for the edge-blocked kernel; ``None`` uses
        :data:`DEFAULT_BLOCK_SIZE` (the autotuner may override it).
    """
    A_csr, X_arr, Y_arr = validate_operands(A, X, Y)
    if strategy not in {"auto", "row", "edge"}:
        raise ValueError(f"unknown strategy {strategy!r}")
    if strategy == "auto":
        strategy = "row" if A_csr.avg_degree() >= 32 else "edge"
    if strategy == "row":
        return fusedmm_rowblocked(
            A_csr,
            X_arr,
            Y_arr,
            pattern=pattern,
            num_threads=num_threads,
            parts_per_thread=parts_per_thread,
            parts=parts,
            pool=pool,
            out=out,
            row_offset=row_offset,
            **pattern_overrides,
        )
    return fusedmm_edgeblocked(
        A_csr,
        X_arr,
        Y_arr,
        pattern=pattern,
        block_size=block_size or DEFAULT_BLOCK_SIZE,
        num_threads=num_threads,
        parts_per_thread=parts_per_thread,
        parts=parts,
        pool=pool,
        out=out,
        row_offset=row_offset,
        **pattern_overrides,
    )
