"""Public FusedMM entry points.

Two levels of API are provided:

* :func:`fusedmm` — one-shot functional call ``Z = fusedmm(A, X, Y,
  pattern=...)`` with backend selection, matching the paper's
  ``Z = FusedMM(A, X, Y)`` formulation (Fig. 2).
* :class:`FusedMM` — a planned/reusable kernel object: the pattern is
  resolved once, the partitioning and (optionally) the autotuned block
  size are computed once, and every subsequent ``__call__`` reuses them.
  This is the shape of API an embedding training loop wants: the adjacency
  matrix is fixed across epochs, only the feature matrices change.

Backends
--------
``"generic"``      the faithful Algorithm 1 reference (paper's "FusedMM")
``"optimized"``    vectorized row-/edge-blocked kernels (paper's "FusedMMopt")
``"specialized"``  hand-fused kernels for the known Table III patterns
``"generated"``    kernels emitted by the code generator (Section IV.B)
``"jit"``          Numba-compiled row-fused kernels (:mod:`repro.core.jit`);
                   runs interpreted when the optional numba extra is absent
``"auto"``         jit (only when numba is importable) → specialized →
                   generated → optimized → generic, first backend that
                   supports the requested pattern wins

All backends share the ``out=``/``row_offset=`` output surface: pass a
preallocated ``(k, d)`` slab and row ``u`` of the result lands in
``out[u - row_offset]`` — the shard workers use this to write straight
into shared memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import BackendError
from ..sparse import CSRMatrix
from . import jit as jit_backend
from .autotune import TuningResult, autotune
from .codegen import compile_kernel, supports_pattern
from .generic import fusedmm_generic
from .optimized import DEFAULT_BLOCK_SIZE, fusedmm_optimized
from .partition import part1d
from .patterns import OpPattern, get_pattern
from .specialized import get_specialized_kernel

__all__ = ["fusedmm", "FusedMM", "BACKENDS"]

BACKENDS = ("auto", "jit", "generic", "optimized", "specialized", "generated")


def fusedmm(
    A,
    X,
    Y=None,
    *,
    pattern: OpPattern | str = "sigmoid_embedding",
    backend: str = "auto",
    num_threads: int = 1,
    block_size: Optional[int] = None,
    strategy: str = "auto",
    out: Optional[np.ndarray] = None,
    row_offset: int = 0,
    **pattern_overrides,
) -> np.ndarray:
    """Compute ``Z = FusedMM(A, X, Y)`` for the requested operator pattern.

    Parameters
    ----------
    A:
        Sparse adjacency slice (anything :func:`repro.sparse.as_csr`
        accepts): ``m × n``.
    X:
        ``m × d`` source-vertex features.
    Y:
        ``n × d`` destination-vertex features; defaults to ``X`` when ``A``
        is square.
    pattern:
        Pattern name (``"sigmoid_embedding"``, ``"fr_layout"``, ``"gcn"``,
        ``"gnn_mlp"``, ``"spmm"``, …), an
        :class:`~repro.core.patterns.OpPattern`, or ``None`` with explicit
        ``vop=...``/``rop=...``/... keyword overrides.
    backend:
        One of :data:`BACKENDS`.
    num_threads:
        Worker threads for the partition-parallel backends.
    block_size:
        Edge-block size override for the blocked backends.
    strategy:
        ``"row"``, ``"edge"`` or ``"auto"`` for the optimized backend.
    out, row_offset:
        Optional preallocated output slab shared by every backend: row
        ``u`` of the result is written to ``out[u - row_offset]`` and only
        the covered rows are computed.

    Returns
    -------
    numpy.ndarray
        The ``m × d`` updated feature matrix ``Z``.
    """
    if backend not in BACKENDS:
        raise BackendError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    op_pattern = get_pattern(pattern, **pattern_overrides)
    resolved = op_pattern.resolved()

    if backend == "generic":
        return fusedmm_generic(
            A, X, Y, pattern=op_pattern, out=out, row_offset=row_offset
        )

    if backend == "jit" or (
        backend == "auto"
        and jit_backend.jit_available()
        and jit_backend.jit_supports_pattern(resolved)
    ):
        # ``auto`` only prefers the tier when numba is actually importable;
        # an explicit backend="jit" also runs interpreted (slow but exact)
        # so the compiled semantics stay testable everywhere.
        return jit_backend.fusedmm_jit(
            A,
            X,
            Y,
            pattern=op_pattern,
            block_size=block_size or DEFAULT_BLOCK_SIZE,
            num_threads=num_threads,
            out=out,
            row_offset=row_offset,
        )

    if backend in ("specialized", "auto"):
        kernel = get_specialized_kernel(resolved)
        if kernel is not None:
            return kernel(
                A,
                X,
                Y,
                block_size=block_size or DEFAULT_BLOCK_SIZE,
                num_threads=num_threads,
                out=out,
                row_offset=row_offset,
            )
        if backend == "specialized":
            raise BackendError(
                f"no specialized kernel exists for pattern {resolved.name!r}; "
                "use backend='optimized' or 'auto'"
            )

    if backend in ("generated", "auto"):
        if supports_pattern(resolved):
            kernel = compile_kernel(resolved)
            return kernel(
                A,
                X,
                Y,
                block_size=block_size or DEFAULT_BLOCK_SIZE,
                num_threads=num_threads,
                out=out,
                row_offset=row_offset,
            )
        if backend == "generated":
            raise BackendError(
                f"the code generator has no templates for pattern {resolved.name!r} "
                f"(ops {resolved.op_names()}); use backend='optimized' or 'auto'"
            )

    # optimized / auto fallback
    try:
        return fusedmm_optimized(
            A,
            X,
            Y,
            pattern=op_pattern,
            strategy=strategy,
            block_size=block_size,
            num_threads=num_threads,
            out=out,
            row_offset=row_offset,
        )
    except Exception:
        if backend == "optimized":
            raise
        # Last-resort fallback for exotic user operators whose batched form
        # misbehaves: the reference kernel always works.
        return fusedmm_generic(
            A, X, Y, pattern=op_pattern, out=out, row_offset=row_offset
        )


@dataclass
class _Plan:
    """Execution plan cached by :class:`FusedMM`."""

    backend: str
    strategy: str
    block_size: int
    num_threads: int
    tuning: Optional[TuningResult] = None


class FusedMM:
    """A planned, reusable FusedMM kernel bound to one adjacency matrix.

    Example
    -------
    >>> from repro import FusedMM
    >>> from repro.graphs import load_dataset, random_features
    >>> g = load_dataset("cora")
    >>> X = random_features(g.num_vertices, 64, seed=0)
    >>> kernel = FusedMM(g.adjacency, pattern="sigmoid_embedding", autotune=False)
    >>> Z = kernel(X)          # Y defaults to X for square A
    >>> Z.shape
    (2708, 64)
    """

    def __init__(
        self,
        A,
        *,
        pattern: OpPattern | str = "sigmoid_embedding",
        backend: str = "auto",
        num_threads: int = 1,
        block_size: Optional[int] = None,
        strategy: str = "auto",
        autotune: bool = False,
        autotune_dim: int = 128,
        **pattern_overrides,
    ) -> None:
        if backend not in BACKENDS:
            raise BackendError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
        from ..sparse import as_csr

        self.A: CSRMatrix = as_csr(A)
        self.pattern: OpPattern = get_pattern(pattern, **pattern_overrides)
        self.resolved = self.pattern.resolved()
        self.partitions = part1d(self.A, max(1, num_threads))
        self._autotune_requested = autotune
        self._autotune_dim = autotune_dim
        self.plan = _Plan(
            backend=backend,
            strategy=strategy,
            block_size=block_size or DEFAULT_BLOCK_SIZE,
            num_threads=max(1, num_threads),
        )
        if autotune:
            self._run_autotune()

    # ------------------------------------------------------------------ #
    def _run_autotune(self) -> None:
        """Tune strategy/block size on synthetic features of the configured
        dimension (the adjacency is what matters for the access pattern)."""
        rng = np.random.default_rng(0)
        d = self._autotune_dim
        X = rng.standard_normal((self.A.nrows, d)).astype(np.float32)
        Y = (
            X
            if self.A.nrows == self.A.ncols
            else rng.standard_normal((self.A.ncols, d)).astype(np.float32)
        )
        result = autotune(
            self.A,
            X,
            Y,
            pattern=self.pattern,
            num_threads=self.plan.num_threads,
            strategies=(
                None if self.plan.backend in ("auto", "jit") else ("row", "edge")
            ),
        )
        self.plan.tuning = result
        if result.strategy == "jit":
            # The JIT tier beat both NumPy blocking strategies: pin the
            # backend (the jit kernels have no row/edge strategy knob).
            self.plan.backend = "jit"
            self.plan.strategy = "auto"
        else:
            self.plan.strategy = result.strategy
        self.plan.block_size = result.block_size

    # ------------------------------------------------------------------ #
    def __call__(self, X, Y=None, *, out=None, row_offset: int = 0) -> np.ndarray:
        """Execute the planned kernel on new feature matrices."""
        return fusedmm(
            self.A,
            X,
            Y,
            pattern=self.pattern,
            backend=self.plan.backend,
            num_threads=self.plan.num_threads,
            block_size=self.plan.block_size,
            strategy=self.plan.strategy,
            out=out,
            row_offset=row_offset,
        )

    # ------------------------------------------------------------------ #
    def describe(self) -> dict:
        """Human-readable summary of the plan (for logs and reports)."""
        info = {
            "pattern": self.resolved.name,
            "ops": self.resolved.op_names(),
            "backend": self.plan.backend,
            "strategy": self.plan.strategy,
            "block_size": self.plan.block_size,
            "num_threads": self.plan.num_threads,
            "partitions": len(self.partitions),
            "nnz": self.A.nnz,
            "shape": self.A.shape,
        }
        if self.plan.tuning is not None:
            info["tuning"] = self.plan.tuning.as_dict()
        return info

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FusedMM(pattern={self.resolved.name!r}, backend={self.plan.backend!r}, "
            f"A={self.A.shape}, nnz={self.A.nnz})"
        )
