"""Kernel code generation (the ATLAS-style generator of Section IV.B).

The paper generates architecture-specific SIMD kernels from base files
written in the ``extract`` metalanguage: for each predefined operator
pattern, a source file with the right intrinsics, register blocking and
unrolling is produced, compiled, and selected by the autotuner.

The Python analogue generates *NumPy source code* specialized for one
operator pattern: the five steps are inlined as concrete array expressions
(with the VOP+ROP dot-product fusion applied when possible), the blocking
strategy (row- vs edge-blocked) is fixed at generation time, and the
resulting source is compiled with :func:`compile`/``exec`` and cached.
Generated kernels remove all per-step operator dispatch — the same benefit
the paper gets from pattern-specialized C kernels — and the generated
source can be inspected (:func:`generate_kernel_source`) for debugging or
curiosity, exactly like the generated ``.c`` files of the original library.

Only *registered standard* operators can be inlined; patterns containing
user-defined operators fall back to the general optimized kernel (the
dispatcher in :mod:`repro.core.fused` handles that automatically).
"""

from __future__ import annotations

import textwrap
from typing import Callable, Dict, Tuple

import numpy as np

from ..errors import CodegenError
from .mathops import sigmoid
from .optimized import (
    DEFAULT_BLOCK_SIZE,
    _alloc_accumulator,
    _finalize_output,
    _window_parts,
)
from .parallel import ParallelConfig, run_partitioned
from .patterns import ResolvedPattern

__all__ = [
    "supports_pattern",
    "generate_kernel_source",
    "compile_kernel",
    "clear_kernel_cache",
    "kernel_cache_info",
]


# ---------------------------------------------------------------------- #
# Expression templates for the standard operators
# ---------------------------------------------------------------------- #
# Each template is a Python expression over the block-local variables
#   Xs   (k, d) gathered source features
#   Yd   (k, d) gathered destination features
#   vals (k,)   edge values
#   W    VOP output, S ROP output, H SOP output
_VOP_EXPR: Dict[str, str] = {
    "NOOP": "Yd",
    "MUL": "Xs * Yd",
    "ADD": "Xs + Yd",
    "SUB": "Xs - Yd",
    "SEL1ST": "Xs",
    "SEL2ND": "Yd",
    # EDGESCALE scales its first (message) operand by the edge value; in the
    # VOP slot the message operand is the source feature block.
    "EDGESCALE": "vals[:, None] * Xs",
}

_ROP_EXPR: Dict[str, str] = {
    "NOOP": "W",
    "RSUM": "np.sum(W, axis=1)",
    "RMUL": "np.prod(W, axis=1)",
    "RMAX": "np.max(W, axis=1)",
    "NORM": "np.sqrt(np.einsum('ij,ij->i', W, W))",
}

# Fused VOP+ROP expressions: when the pair matches, the intermediate W is
# never formed (the "dot product in registers" of Fig. 5).
_FUSED_VOP_ROP: Dict[Tuple[str, str], str] = {
    ("MUL", "RSUM"): "np.einsum('ij,ij->i', Xs, Yd)",
    ("SUB", "NORM"): "np.sqrt(np.einsum('ij,ij->i', Xs - Yd, Xs - Yd))",
    ("ADD", "RSUM"): "np.sum(Xs + Yd, axis=1)",
}

_SOP_EXPR: Dict[str, str] = {
    "NOOP": "S",
    # ``sigmoid`` is repro.core.mathops.sigmoid, injected into the compile
    # namespace — one clamp definition shared with every other backend.
    "SIGMOID": "sigmoid(S)",
    "TDIST": "1.0 / (1.0 + np.square(S))",
    "RELU": "np.maximum(S, 0.0)",
    "TANH": "np.tanh(S)",
    "EXP": "np.exp(np.clip(S, -60.0, 60.0))",
    "SCAL": "S",
}

# MOP templates keyed by (name, message_is_scalar).  Scalar messages need
# the broadcast axis inserted.
_MOP_EXPR: Dict[Tuple[str, bool], str] = {
    ("NOOP", True): "H[:, None]",
    ("NOOP", False): "H",
    ("MUL", True): "H[:, None] * Yd",
    ("MUL", False): "H * Yd",
    ("MULDIFF", True): "H[:, None] * W",
    ("MULDIFF", False): "H * W",
    ("EDGESCALE", True): "vals[:, None] * H[:, None]",
    ("EDGESCALE", False): "vals[:, None] * H",
    ("SEL2ND", True): "Yd",
    ("SEL2ND", False): "Yd",
    ("SEL1ST", True): "H[:, None]",
    ("SEL1ST", False): "H",
    ("ADD", True): "H[:, None] + Yd",
    ("ADD", False): "H + Yd",
    ("SUB", True): "H[:, None] - Yd",
    ("SUB", False): "H - Yd",
}

_AOP_SUPPORTED = {"ASUM", "AMAX", "AMIN"}

_AOP_UFUNC = {"ASUM": "np.add", "AMAX": "np.maximum", "AMIN": "np.minimum"}
_AOP_IDENTITY = {"ASUM": "0.0", "AMAX": "-np.inf", "AMIN": "np.inf"}


def supports_pattern(pattern: ResolvedPattern) -> bool:
    """Whether the generator can emit source for this pattern (all five
    slots are standard operators with expression templates)."""
    names = pattern.op_names()
    scalar = pattern.message_is_scalar
    return (
        names["vop"] in _VOP_EXPR
        and names["rop"] in _ROP_EXPR
        and names["sop"] in _SOP_EXPR
        and (names["mop"], scalar) in _MOP_EXPR
        and names["aop"] in _AOP_SUPPORTED
    )


# ---------------------------------------------------------------------- #
# Source generation
# ---------------------------------------------------------------------- #
_KERNEL_TEMPLATE = '''\
def _generated_block_kernel(indptr, indices, data, edge_rows, X, Y, z_slice,
                            part_start, edge_lo, edge_hi, block_size):
    """Auto-generated FusedMM block kernel for pattern {pattern_name!r}.

    Steps inlined:
      VOP = {vop}, ROP = {rop}, SOP = {sop}, MOP = {mop}, AOP = {aop}
    """
    e0 = edge_lo
    while e0 < edge_hi:
        # Blocks align to the absolute edge grid so any row partitioning
        # chunks a row's edges identically (thread-count determinism).
        e1 = min((e0 // block_size + 1) * block_size, edge_hi)
        src = edge_rows[e0:e1]
        dst = indices[e0:e1]
        vals = data[e0:e1]
        Xs = X[src]
        Yd = Y[dst]
{body}
        change = np.flatnonzero(np.diff(src)) + 1
        starts = np.concatenate(([0], change))
        seg_rows = src[starts] - part_start
{accumulate}
        e0 = e1
'''


def generate_kernel_source(pattern: ResolvedPattern) -> str:
    """Emit the Python source of a block kernel specialized for ``pattern``.

    Raises :class:`~repro.errors.CodegenError` when the pattern contains an
    operator without an expression template.
    """
    if not supports_pattern(pattern):
        raise CodegenError(
            f"pattern {pattern.name!r} uses operators without codegen templates: "
            f"{pattern.op_names()}"
        )
    names = pattern.op_names()
    scalar = pattern.message_is_scalar

    lines = []
    fused = _FUSED_VOP_ROP.get((names["vop"], names["rop"]))
    mop_expr = _MOP_EXPR[(names["mop"], scalar)]
    needs_w = "W" in mop_expr
    if fused is not None and not needs_w:
        lines.append(f"S = {fused}")
    else:
        lines.append(f"W = {_VOP_EXPR[names['vop']]}")
        rop_expr = _ROP_EXPR[names["rop"]]
        lines.append(f"S = {rop_expr}")
    sop_expr = _SOP_EXPR[names["sop"]]
    lines.append(f"H = {sop_expr}")
    lines.append(f"M = {mop_expr}")
    body = textwrap.indent("\n".join(lines), " " * 8)

    aop = names["aop"]
    if aop == "ASUM":
        accumulate = textwrap.indent(
            "z_slice[seg_rows] += np.add.reduceat(M, starts, axis=0)", " " * 8
        )
    else:
        ufunc = _AOP_UFUNC[aop]
        accumulate = textwrap.indent(
            f"seg = {ufunc}.reduceat(M, starts, axis=0)\n"
            f"z_slice[seg_rows] = {ufunc}(z_slice[seg_rows], seg)",
            " " * 8,
        )

    return _KERNEL_TEMPLATE.format(
        pattern_name=pattern.name,
        vop=names["vop"],
        rop=names["rop"],
        sop=names["sop"],
        mop=names["mop"],
        aop=names["aop"],
        body=body,
        accumulate=accumulate,
    )


# ---------------------------------------------------------------------- #
# Compilation and caching
# ---------------------------------------------------------------------- #
_KERNEL_CACHE: Dict[Tuple[str, ...], Callable] = {}


def _cache_key(pattern: ResolvedPattern) -> Tuple[str, ...]:
    names = pattern.op_names()
    return (names["vop"], names["rop"], names["sop"], names["mop"], names["aop"])


def clear_kernel_cache() -> None:
    """Drop all compiled generated kernels (mainly for tests)."""
    _KERNEL_CACHE.clear()


def kernel_cache_info() -> Dict[str, int]:
    """Number of compiled kernels currently cached."""
    return {"cached_kernels": len(_KERNEL_CACHE)}


def compile_kernel(pattern: ResolvedPattern) -> Callable:
    """Compile (or fetch from cache) the generated kernel for ``pattern``.

    Returns a function with the signature

    ``kernel(A, X, Y, *, block_size=..., num_threads=..., parts_per_thread=...) -> Z``
    """
    key = _cache_key(pattern)
    if key in _KERNEL_CACHE:
        return _KERNEL_CACHE[key]

    source = generate_kernel_source(pattern)
    namespace: Dict[str, object] = {"np": np, "sigmoid": sigmoid}
    try:
        code = compile(source, filename=f"<generated:{pattern.name}>", mode="exec")
        exec(code, namespace)  # noqa: S102 - deliberate, this is the code generator
    except SyntaxError as exc:  # pragma: no cover - template bug guard
        raise CodegenError(f"generated source failed to compile: {exc}\n{source}") from exc
    block_kernel = namespace["_generated_block_kernel"]

    aop_name = pattern.op_names()["aop"]
    identity = {"ASUM": 0.0, "AMAX": -np.inf, "AMIN": np.inf}[aop_name]

    def generated_fusedmm(
        A,
        X,
        Y=None,
        *,
        block_size: int = DEFAULT_BLOCK_SIZE,
        num_threads: int = 1,
        parts_per_thread: int = 1,
        parts=None,
        pool=None,
        out=None,
        row_offset: int = 0,
    ) -> np.ndarray:
        from .validation import resolve_out_window, validate_operands

        A_csr, X_arr, Y_arr = validate_operands(A, X, Y)
        m, d = X_arr.shape
        w0, w1 = resolve_out_window(out, row_offset, m, d)
        parts = _window_parts(
            A_csr,
            w0,
            w1,
            parts,
            ParallelConfig(num_threads, parts_per_thread).num_parts,
        )
        Z = _alloc_accumulator(
            out, w0, w1, d, 0.0 if aop_name == "ASUM" else identity
        )
        indptr, indices, data = A_csr.indptr, A_csr.indices, A_csr.data
        edge_rows = np.repeat(np.arange(m, dtype=np.int64), A_csr.row_degrees())

        def run(part, z_slice):
            block_kernel(
                indptr,
                indices,
                data,
                edge_rows,
                X_arr,
                Y_arr,
                z_slice,
                part.start,
                int(indptr[part.start]),
                int(indptr[part.stop]),
                block_size,
            )

        run_partitioned(
            A_csr, Z, run, config=ParallelConfig(num_threads, parts_per_thread),
            parts=parts, pool=pool, row_offset=w0,
        )
        if aop_name != "ASUM":
            empty = A_csr.row_degrees()[w0:w1] == 0
            if np.any(empty):
                Z[empty] = 0.0
        return _finalize_output(Z, out, X_arr.dtype)

    generated_fusedmm.__name__ = f"fusedmm_generated_{pattern.name}"
    generated_fusedmm.source = source  # type: ignore[attr-defined]
    _KERNEL_CACHE[key] = generated_fusedmm
    return generated_fusedmm
