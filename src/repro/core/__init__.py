"""Core FusedMM kernel package — the paper's primary contribution.

Layout
------
``operators``    five-step operator abstraction + Table II registry
``patterns``     Table III application patterns
``generic``      Algorithm 1 reference kernel
``optimized``    vectorized row-/edge-blocked kernels (FusedMMopt)
``specialized``  hand-fused kernels for the known patterns
``jit``          Numba-compiled row-fused kernels (optional extra)
``mathops``      shared scalar math (clipped sigmoid)
``codegen``      pattern-specialized kernel source generator
``autotune``     strategy / block-size autotuner
``partition``    PART1D nnz-balanced 1-D partitioning
``parallel``     thread-parallel partition driver
``fused``        public ``fusedmm()`` / ``FusedMM`` dispatcher
"""

from .autotune import TuningResult, autotune
from .codegen import compile_kernel, generate_kernel_source, supports_pattern
from .fused import BACKENDS, FusedMM, fusedmm
from .generic import fusedmm_generic
from .jit import fusedmm_jit, jit_available, jit_supports_pattern
from .mathops import SIGMOID_CLAMP, sigmoid, sigmoid_scalar
from .operators import Operator, OpKind, get_op, list_ops, make_mlp_vop, make_scal, register_op
from .optimized import (
    DEFAULT_BLOCK_SIZE,
    fusedmm_edgeblocked,
    fusedmm_optimized,
    fusedmm_rowblocked,
)
from .parallel import ParallelConfig, available_threads, run_partitioned
from .partition import RowPartition, part1d, partition_balance
from .patterns import OpPattern, get_pattern, list_patterns, register_pattern
from .specialized import (
    fr_layout_kernel,
    gcn_kernel,
    get_specialized_kernel,
    sigmoid_embedding_kernel,
    spmm_kernel,
)

__all__ = [
    "fusedmm",
    "FusedMM",
    "BACKENDS",
    "fusedmm_generic",
    "fusedmm_jit",
    "jit_available",
    "jit_supports_pattern",
    "SIGMOID_CLAMP",
    "sigmoid",
    "sigmoid_scalar",
    "fusedmm_optimized",
    "fusedmm_rowblocked",
    "fusedmm_edgeblocked",
    "DEFAULT_BLOCK_SIZE",
    "Operator",
    "OpKind",
    "get_op",
    "list_ops",
    "register_op",
    "make_scal",
    "make_mlp_vop",
    "OpPattern",
    "get_pattern",
    "list_patterns",
    "register_pattern",
    "sigmoid_embedding_kernel",
    "fr_layout_kernel",
    "spmm_kernel",
    "gcn_kernel",
    "get_specialized_kernel",
    "compile_kernel",
    "generate_kernel_source",
    "supports_pattern",
    "autotune",
    "TuningResult",
    "part1d",
    "partition_balance",
    "RowPartition",
    "ParallelConfig",
    "run_partitioned",
    "available_threads",
]
