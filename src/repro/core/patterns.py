"""Application operator patterns (paper Table III).

A :class:`OpPattern` names the five operators occupying the VOP/ROP/SOP/
MOP/AOP slots.  The built-in patterns reproduce the four rows of Table III:

=====================  ========  ======  ========  =========  =====
Application            VOP       ROP     SOP       MOP        AOP
=====================  ========  ======  ========  =========  =====
``fr_layout``          SUB       NORM    TDIST     MULDIFF    ASUM
``sigmoid_embedding``  MUL       RSUM    SIGMOID   MUL        ASUM
``gcn``                SEL2ND    NOOP    NOOP      EDGESCALE  ASUM
``gnn_mlp``            MLP(user) NOOP    SIGMOID   MUL        AMAX
``spmm``               SEL2ND    NOOP    NOOP      EDGESCALE  ASUM
``sddmm_dot``          MUL       RSUM    NOOP      SEL1ST     ASUM
=====================  ========  ======  ========  =========  =====

Differences from the paper's table, and why
-------------------------------------------
* The FR row of Table III lists ``ADD`` for VOP and ``SCAL`` for SOP.  The
  actual force computation shown in Fig. 1(a) is a *difference* of the two
  position vectors scaled by a function of their distance; we therefore use
  ``SUB`` for VOP and the Student-t force kernel ``TDIST`` for SOP (the same
  kernel the authors' Force2Vec/BatchLayout code uses), and ``MULDIFF`` so
  the aggregated direction is the VOP output rather than the neighbour
  feature.  The *structure* (vector VOP → scalar ROP → scalar SOP → vector
  MOP → sum AOP) is identical to the paper's row.
* The GCN row's "MUL for MOP" means "multiply the message by the edge
  feature"; the explicit name here is ``EDGESCALE``.
* ``spmm`` is the SpMM specialisation of FusedMM used in the MKL comparison
  (Table VII); it is the same op tuple as ``gcn``.
* ``sddmm_dot`` computes only the edge messages ``x_uᵀ y_v`` (a pure SDDMM);
  with ``SEL1ST``/``ASUM`` the aggregation degenerates to summing the scalar
  messages, which is occasionally useful on its own and exercises the
  scalar-message path.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from ..errors import PatternError
from .operators import OpKind, Operator, get_op

__all__ = [
    "OpPattern",
    "PATTERNS",
    "get_pattern",
    "register_pattern",
    "list_patterns",
]


@dataclass(frozen=True)
class OpPattern:
    """The five operators of one FusedMM invocation.

    Attributes may be operator names (resolved through the registry) or
    :class:`~repro.core.operators.Operator` instances (e.g. a user MLP).
    """

    name: str
    vop: object = "NOOP"
    rop: object = "NOOP"
    sop: object = "NOOP"
    mop: object = "NOOP"
    aop: object = "ASUM"
    #: Optional human description used in reports.
    description: str = ""

    # ------------------------------------------------------------------ #
    def resolved(self) -> "ResolvedPattern":
        """Resolve all five slots to :class:`Operator` objects and validate
        that each operator is allowed in its slot."""
        ops = {}
        for kind, value in (
            (OpKind.VOP, self.vop),
            (OpKind.ROP, self.rop),
            (OpKind.SOP, self.sop),
            (OpKind.MOP, self.mop),
            (OpKind.AOP, self.aop),
        ):
            op = get_op(value)
            if not op.is_noop and not op.allowed_in(kind):
                raise PatternError(
                    f"operator {op.name!r} cannot be used as {kind.upper()} in pattern "
                    f"{self.name!r}"
                )
            ops[kind] = op
        if ops[OpKind.AOP].is_noop:
            raise PatternError(
                f"pattern {self.name!r}: AOP must be a real accumulator (ASUM/AMAX/AMIN)"
            )
        return ResolvedPattern(name=self.name, description=self.description, **ops)

    def with_ops(self, **kwargs) -> "OpPattern":
        """Return a copy with some slots replaced (e.g. a user VOP)."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class ResolvedPattern:
    """An :class:`OpPattern` whose slots are concrete :class:`Operator`s."""

    name: str
    vop: Operator
    rop: Operator
    sop: Operator
    mop: Operator
    aop: Operator
    description: str = ""

    @property
    def message_is_scalar(self) -> bool:
        """True when the per-edge message entering MOP is a scalar, i.e. the
        ROP slot actually reduces.  This is the property the optimizer uses
        to choose the scalar-message fast path and it also determines the
        size of the intermediate H an *unfused* pipeline would store
        (``nnz`` vs ``nnz × d``)."""
        return self.rop.reduces

    @property
    def is_spmm_like(self) -> bool:
        """True for patterns equivalent to an SpMM (GCN row of Table III):
        the message is just the neighbour feature scaled by the edge value
        and the aggregation is a sum."""
        return (
            self.vop.name in {"SEL2ND", "NOOP"}
            and self.rop.is_noop
            and self.sop.is_noop
            and self.mop.name in {"EDGESCALE", "SEL2ND", "NOOP"}
            and self.aop.name == "ASUM"
        )

    @property
    def is_sigmoid_embedding(self) -> bool:
        """True for the VERSE/Force2Vec sigmoid embedding row of Table III."""
        return (
            self.vop.name == "MUL"
            and self.rop.name == "RSUM"
            and self.sop.name == "SIGMOID"
            and self.mop.name == "MUL"
            and self.aop.name == "ASUM"
        )

    @property
    def is_fr_layout(self) -> bool:
        """True for the force-directed layout row of Table III."""
        return (
            self.vop.name == "SUB"
            and self.rop.name == "NORM"
            and self.mop.name == "MULDIFF"
            and self.aop.name == "ASUM"
        )

    def op_names(self) -> Dict[str, str]:
        """Slot → operator-name mapping (for reports and cache keys)."""
        return {
            "vop": self.vop.name,
            "rop": self.rop.name,
            "sop": self.sop.name,
            "mop": self.mop.name,
            "aop": self.aop.name,
        }


# ---------------------------------------------------------------------- #
# Built-in pattern registry (Table III)
# ---------------------------------------------------------------------- #
PATTERNS: Dict[str, OpPattern] = {}


def register_pattern(pattern: OpPattern, *, overwrite: bool = False) -> OpPattern:
    """Register a pattern so it can be requested by name in
    :func:`repro.fusedmm`."""
    key = pattern.name.lower()
    if key in PATTERNS and not overwrite:
        raise PatternError(f"pattern {key!r} already registered")
    PATTERNS[key] = pattern
    return pattern


def list_patterns() -> list:
    """Names of all registered patterns."""
    return sorted(PATTERNS)


def get_pattern(name_or_pattern, **overrides) -> OpPattern:
    """Resolve a pattern by name, an :class:`OpPattern` instance, or build an
    anonymous pattern from explicit ``vop=...`` keyword overrides."""
    if isinstance(name_or_pattern, OpPattern):
        pattern = name_or_pattern
    elif isinstance(name_or_pattern, str):
        key = name_or_pattern.lower()
        if key not in PATTERNS:
            raise PatternError(
                f"unknown pattern {name_or_pattern!r}; available: {', '.join(list_patterns())}"
            )
        pattern = PATTERNS[key]
    elif name_or_pattern is None:
        pattern = OpPattern(name="custom")
    else:
        raise PatternError(f"cannot interpret pattern {name_or_pattern!r}")
    if overrides:
        pattern = pattern.with_ops(**overrides)
    return pattern


register_pattern(
    OpPattern(
        name="sigmoid_embedding",
        vop="MUL",
        rop="RSUM",
        sop="SIGMOID",
        mop="MUL",
        aop="ASUM",
        description="VERSE / Force2Vec sigmoid graph embedding: "
        "z_u = Σ_v σ(x_u·y_v) y_v  (Table III row 2, Fig. 1b)",
    )
)

register_pattern(
    OpPattern(
        name="fr_layout",
        vop="SUB",
        rop="NORM",
        sop="TDIST",
        mop="MULDIFF",
        aop="ASUM",
        description="Force-directed (FR) layout attractive forces: "
        "z_u = Σ_v f(||x_u - x_v||) (x_u - x_v)  (Table III row 1, Fig. 1a)",
    )
)

register_pattern(
    OpPattern(
        name="gcn",
        vop="SEL2ND",
        rop="NOOP",
        sop="NOOP",
        mop="EDGESCALE",
        aop="ASUM",
        description="Graph convolution aggregation: z_u = Σ_v a_uv y_v "
        "(Table III row 3, Fig. 1c)",
    )
)

register_pattern(
    OpPattern(
        name="spmm",
        vop="SEL2ND",
        rop="NOOP",
        sop="NOOP",
        mop="EDGESCALE",
        aop="ASUM",
        description="SpMM specialisation of FusedMM (same ops as GCN), used in "
        "the MKL comparison of Table VII",
    )
)

register_pattern(
    OpPattern(
        name="gnn_mlp",
        vop="NOOP",  # replaced with a user MLP operator at call time
        rop="NOOP",
        sop="SIGMOID",
        mop="MUL",
        aop="AMAX",
        description="GNN with MLP edge messages and max pooling "
        "(Table III row 4, Fig. 1d); the VOP slot takes a user MLP operator",
    )
)

register_pattern(
    OpPattern(
        name="sddmm_dot",
        vop="MUL",
        rop="RSUM",
        sop="NOOP",
        mop="SEL1ST",
        aop="ASUM",
        description="Pure dot-product SDDMM followed by a scalar sum per row; "
        "exercises the scalar-message path on its own",
    )
)
