"""Shared scalar math used by every kernel backend.

The clipped, numerically stable sigmoid was historically defined twice —
once in :mod:`repro.core.operators` (the registry's SIGMOID) and once in
:mod:`repro.core.specialized` (the hand-fused sigmoid-embedding kernel) —
which let the clamp bounds drift between backends.  It now lives here, in
both an array form (NumPy backends, codegen templates) and a scalar form
written in plain ``math`` so the Numba JIT kernels compile the exact same
clamp-and-branch arithmetic.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["SIGMOID_CLAMP", "sigmoid", "sigmoid_scalar"]

#: Inputs are clamped to ``[-SIGMOID_CLAMP, SIGMOID_CLAMP]`` before the
#: exponential: ``exp(±60)`` is already far beyond float32 precision of the
#: sigmoid (1 ∓ ~1e-26) while staying comfortably inside float64 range.
SIGMOID_CLAMP = 60.0


def sigmoid(x):
    """Numerically stable clipped sigmoid for scalars and arrays.

    Uses the two-branch formulation (``1/(1+e^-x)`` for ``x >= 0``,
    ``e^x/(1+e^x)`` otherwise) so neither branch ever exponentiates a
    large positive number.  ``exp(-|x|)`` serves both branches, so this
    is a single exponential per element — it sits on the hottest SOP
    path of the sigmoid-embedding kernels.
    """
    clipped = np.clip(x, -SIGMOID_CLAMP, SIGMOID_CLAMP)
    e = np.exp(-np.abs(clipped))
    return np.where(np.asarray(x) >= 0, 1.0 / (1.0 + e), e / (1.0 + e))


def sigmoid_scalar(x: float) -> float:
    """Scalar twin of :func:`sigmoid` built on ``math.exp`` only.

    Kept free of NumPy so Numba compiles it to the same branch-and-clamp
    sequence the array form evaluates — the JIT and NumPy backends agree
    on the clamp bounds by construction.
    """
    if x >= 0.0:
        if x > SIGMOID_CLAMP:
            x = SIGMOID_CLAMP
        return 1.0 / (1.0 + math.exp(-x))
    if x < -SIGMOID_CLAMP:
        x = -SIGMOID_CLAMP
    e = math.exp(x)
    return e / (1.0 + e)
