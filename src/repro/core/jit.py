"""JIT-compiled FusedMM kernels (the Numba backend tier).

The paper's generated SIMD kernels compile the five-operator pipeline into
one register-blocked, allocation-free pass per row (Section IV.B).  This
module is the closest Python analogue: Numba ``@njit(parallel=True,
cache=True)`` kernels that fuse VOP→ROP→SOP→MOP→AOP into a single loop
nest with no per-edge temporaries — only a ``(d,)`` scratch vector and a
``(d,)`` float64 accumulator per row, cast into the output row once.

Three hand-fused fast paths cover the Table III patterns the paper
specializes (``sigmoid_embedding``, ``fr_layout``, ``spmm``/``gcn``); every
other pattern built from standard registry operators runs through one
generic compiled kernel driven by a *dispatch table* of integer opcodes
(:data:`_VOP_CODES` …) — the operator branches compile to jumps, not
Python dispatch.

Determinism
-----------
Each output row is produced by one sequential pass over its own edges, so
results are bitwise identical for any ``prange`` thread count, any
partition list and any shard count — the same invariant the NumPy
backends guarantee via grid-aligned edge blocks falls out of the row-wise
formulation for free.

Optional dependency
-------------------
Numba is an optional extra (``pip install repro-fusedmm[jit]``).  Without
it this module still imports cleanly: ``njit`` degrades to a no-op
decorator and the same kernel bodies execute interpreted — correct but
slow, so the ``auto`` backend never selects the tier unless
:func:`jit_available` is true.  Requesting ``backend="jit"`` explicitly
always works (interpreted when Numba is absent), which keeps the kernels
property-testable everywhere.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Sequence

import numpy as np

from ..errors import BackendError
from ..sparse import as_csr
from .mathops import SIGMOID_CLAMP, sigmoid_scalar
from .optimized import DEFAULT_BLOCK_SIZE
from .patterns import OpPattern, ResolvedPattern, get_pattern
from .validation import ensure_float_matrix, resolve_out_window, validate_operands

__all__ = [
    "NUMBA_AVAILABLE",
    "jit_available",
    "jit_supports_pattern",
    "fusedmm_jit",
    "get_jit_kernel",
    "warmup",
]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit, prange

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - default in minimal installs
    NUMBA_AVAILABLE = False
    prange = range

    def njit(*args, **kwargs):  # noqa: D401 - decorator shim
        """No-op ``numba.njit`` stand-in: kernels run interpreted."""
        if args and callable(args[0]):
            return args[0]

        def wrap(fn):
            return fn

        return wrap


def jit_available() -> bool:
    """Whether the real Numba compiler is importable.

    Dispatchers consult this dynamically (tests monkeypatch
    :data:`NUMBA_AVAILABLE` to exercise the fallback path without
    uninstalling anything).
    """
    return NUMBA_AVAILABLE


# ---------------------------------------------------------------------- #
# Opcode dispatch tables for the generic pipeline kernel
# ---------------------------------------------------------------------- #
# A NOOP in the VOP slot passes the neighbour feature through (the reference
# kernel's ``w = y_v``), i.e. it is SEL2ND.
_VOP_CODES = {"NOOP": 0, "SEL2ND": 0, "ADD": 1, "SUB": 2, "MUL": 3, "SEL1ST": 4}
_ROP_CODES = {"NOOP": 0, "RSUM": 1, "RMUL": 2, "RMAX": 3, "NORM": 4}
_SOP_CODES = {
    "NOOP": 0,
    "SIGMOID": 1,
    "RELU": 2,
    "TANH": 3,
    "EXP": 4,
    "TDIST": 5,
    # SCAL (any alpha) is code 6; the alpha rides along as a kernel arg.
}
_SCAL_CODE = 6
_MOP_CODES = {
    "NOOP": 0,
    "MUL": 1,
    "EDGESCALE": 2,
    "MULDIFF": 3,
    "SEL1ST": 4,
    "SEL2ND": 5,
    "ADD": 6,
    "SUB": 7,
}
_AOP_CODES = {"ASUM": 0, "AMAX": 1, "AMIN": 2}


def _sop_code(name: str, params) -> Optional[int]:
    if name in _SOP_CODES:
        return _SOP_CODES[name]
    if name.startswith("SCAL") and "alpha" in params:
        return _SCAL_CODE
    return None


def jit_supports_pattern(pattern: ResolvedPattern) -> bool:
    """Whether every slot of ``pattern`` maps onto the compiled dispatch
    table (standard registry operators only — user callables cannot cross
    into nopython code)."""
    names = pattern.op_names()
    return (
        names["vop"] in _VOP_CODES
        and names["rop"] in _ROP_CODES
        and _sop_code(names["sop"], pattern.sop.params) is not None
        and names["mop"] in _MOP_CODES
        and names["aop"] in _AOP_CODES
    )


# ---------------------------------------------------------------------- #
# Compiled kernels
# ---------------------------------------------------------------------- #
# The scalar clipped sigmoid is the *shared* definition from
# repro.core.mathops, compiled as-is — the jit and NumPy backends cannot
# drift on the clamp bounds because they execute the same source.
_jit_sigmoid = njit(cache=True)(sigmoid_scalar)


@njit(parallel=True, cache=True)
def _sigmoid_embedding_rows(
    indptr, indices, X, Y, out, row_start, row_stop, row_offset
):
    """Fused ``z_u = Σ_v σ(x_u·y_v) y_v`` — one pass, zero edge temporaries."""
    d = Y.shape[1]
    for u in prange(row_start, row_stop):
        lo = indptr[u]
        hi = indptr[u + 1]
        r = u - row_offset
        if lo == hi:
            for j in range(d):
                out[r, j] = 0.0
            continue
        acc = np.zeros(d, dtype=np.float64)
        for e in range(lo, hi):
            v = indices[e]
            s = 0.0
            for j in range(d):
                s += X[u, j] * Y[v, j]
            h = _jit_sigmoid(s)
            for j in range(d):
                acc[j] += h * Y[v, j]
        for j in range(d):
            out[r, j] = acc[j]


@njit(parallel=True, cache=True)
def _fr_layout_rows(indptr, indices, X, Y, out, row_start, row_stop, row_offset):
    """Fused FR attractive forces ``z_u = Σ_v (x_u−y_v)/(1+‖x_u−y_v‖²)``."""
    d = Y.shape[1]
    for u in prange(row_start, row_stop):
        lo = indptr[u]
        hi = indptr[u + 1]
        r = u - row_offset
        if lo == hi:
            for j in range(d):
                out[r, j] = 0.0
            continue
        acc = np.zeros(d, dtype=np.float64)
        diff = np.empty(d, dtype=np.float64)
        for e in range(lo, hi):
            v = indices[e]
            s = 0.0
            for j in range(d):
                w = X[u, j] - Y[v, j]
                diff[j] = w
                s += w * w
            dist = math.sqrt(s)
            force = 1.0 / (1.0 + dist * dist)
            for j in range(d):
                acc[j] += force * diff[j]
        for j in range(d):
            out[r, j] = acc[j]


@njit(parallel=True, cache=True)
def _spmm_rows(indptr, indices, data, Y, out, row_start, row_stop, row_offset):
    """Fused ``z_u = Σ_v a_uv y_v`` (the GCN/SpMM row of Table III)."""
    d = Y.shape[1]
    for u in prange(row_start, row_stop):
        lo = indptr[u]
        hi = indptr[u + 1]
        r = u - row_offset
        if lo == hi:
            for j in range(d):
                out[r, j] = 0.0
            continue
        acc = np.zeros(d, dtype=np.float64)
        for e in range(lo, hi):
            v = indices[e]
            a = data[e]
            for j in range(d):
                acc[j] += a * Y[v, j]
        for j in range(d):
            out[r, j] = acc[j]


@njit(parallel=True, cache=True)
def _pipeline_rows(
    indptr,
    indices,
    data,
    X,
    Y,
    out,
    row_start,
    row_stop,
    row_offset,
    vop,
    rop,
    sop,
    mop,
    aop,
    alpha,
):
    """Generic five-operator pipeline driven by the compiled dispatch table.

    The opcode branches are resolved per edge (per element on the vector
    path), but inside compiled code they are integer compares — the same
    trade the paper's generated kernels make when they inline the operator
    bodies.  Semantics mirror :func:`repro.core.generic.update_u` exactly,
    including the scalar-message broadcast of patterns whose MOP keeps the
    reduced message (``sddmm_dot``).
    """
    d = Y.shape[1]
    for u in prange(row_start, row_stop):
        lo = indptr[u]
        hi = indptr[u + 1]
        r = u - row_offset
        if lo == hi:
            for j in range(d):
                out[r, j] = 0.0
            continue
        acc = np.empty(d, dtype=np.float64)
        if aop == 0:
            for j in range(d):
                acc[j] = 0.0
        elif aop == 1:
            for j in range(d):
                acc[j] = -np.inf
        else:
            for j in range(d):
                acc[j] = np.inf
        w = np.empty(d, dtype=np.float64)
        for e in range(lo, hi):
            v = indices[e]
            a = data[e]
            # VOP — build the per-edge vector w.
            if vop == 0:
                for j in range(d):
                    w[j] = Y[v, j]
            elif vop == 1:
                for j in range(d):
                    w[j] = X[u, j] + Y[v, j]
            elif vop == 2:
                for j in range(d):
                    w[j] = X[u, j] - Y[v, j]
            elif vop == 3:
                for j in range(d):
                    w[j] = X[u, j] * Y[v, j]
            else:
                for j in range(d):
                    w[j] = X[u, j]
            if rop != 0:
                # Scalar-message path: ROP reduces w, SOP scales the scalar.
                s = 0.0
                if rop == 1:
                    for j in range(d):
                        s += w[j]
                elif rop == 2:
                    s = 1.0
                    for j in range(d):
                        s *= w[j]
                elif rop == 3:
                    s = w[0]
                    for j in range(1, d):
                        if w[j] > s:
                            s = w[j]
                else:
                    for j in range(d):
                        s += w[j] * w[j]
                    s = math.sqrt(s)
                if sop == 0:
                    h = s
                elif sop == 1:
                    h = _jit_sigmoid(s)
                elif sop == 2:
                    h = s if s > 0.0 else 0.0
                elif sop == 3:
                    h = math.tanh(s)
                elif sop == 4:
                    c = s
                    if c > SIGMOID_CLAMP:
                        c = SIGMOID_CLAMP
                    elif c < -SIGMOID_CLAMP:
                        c = -SIGMOID_CLAMP
                    h = math.exp(c)
                elif sop == 5:
                    h = 1.0 / (1.0 + s * s)
                else:
                    h = alpha * s
                for j in range(d):
                    if mop == 0 or mop == 4:
                        m = h
                    elif mop == 1:
                        m = h * Y[v, j]
                    elif mop == 2:
                        # EDGESCALE on a scalar message scales the neighbour
                        # feature (the reference kernel's _first_vector).
                        m = a * Y[v, j]
                    elif mop == 3:
                        m = h * w[j]
                    elif mop == 5:
                        m = Y[v, j]
                    elif mop == 6:
                        m = h + Y[v, j]
                    else:
                        m = h - Y[v, j]
                    if aop == 0:
                        acc[j] += m
                    elif aop == 1:
                        if m > acc[j]:
                            acc[j] = m
                    else:
                        if m < acc[j]:
                            acc[j] = m
            else:
                # Vector-message path: SOP/MOP/AOP fuse per element.
                for j in range(d):
                    wj = w[j]
                    if sop == 0:
                        h = wj
                    elif sop == 1:
                        h = _jit_sigmoid(wj)
                    elif sop == 2:
                        h = wj if wj > 0.0 else 0.0
                    elif sop == 3:
                        h = math.tanh(wj)
                    elif sop == 4:
                        c = wj
                        if c > SIGMOID_CLAMP:
                            c = SIGMOID_CLAMP
                        elif c < -SIGMOID_CLAMP:
                            c = -SIGMOID_CLAMP
                        h = math.exp(c)
                    elif sop == 5:
                        h = 1.0 / (1.0 + wj * wj)
                    else:
                        h = alpha * wj
                    if mop == 0 or mop == 4:
                        m = h
                    elif mop == 1:
                        m = h * Y[v, j]
                    elif mop == 2:
                        m = a * h
                    elif mop == 3:
                        m = h * wj
                    elif mop == 5:
                        m = Y[v, j]
                    elif mop == 6:
                        m = h + Y[v, j]
                    else:
                        m = h - Y[v, j]
                    if aop == 0:
                        acc[j] += m
                    elif aop == 1:
                        if m > acc[j]:
                            acc[j] = m
                    else:
                        if m < acc[j]:
                            acc[j] = m
        for j in range(d):
            out[r, j] = acc[j]


# ---------------------------------------------------------------------- #
# Dispatch
# ---------------------------------------------------------------------- #
def _pattern_codes(resolved: ResolvedPattern):
    names = resolved.op_names()
    sop = _sop_code(names["sop"], resolved.sop.params)
    if (
        names["vop"] not in _VOP_CODES
        or names["rop"] not in _ROP_CODES
        or sop is None
        or names["mop"] not in _MOP_CODES
        or names["aop"] not in _AOP_CODES
    ):
        raise BackendError(
            f"the jit backend has no compiled operators for pattern "
            f"{resolved.name!r} (ops {names}); use backend='optimized' or 'auto'"
        )
    alpha = float(resolved.sop.params.get("alpha", 1.0))
    return (
        _VOP_CODES[names["vop"]],
        _ROP_CODES[names["rop"]],
        sop,
        _MOP_CODES[names["mop"]],
        _AOP_CODES[names["aop"]],
        alpha,
    )


def _is_tdist_fr(resolved: ResolvedPattern) -> bool:
    # ``is_fr_layout`` deliberately ignores the SOP slot; the compiled fast
    # path hard-codes the Student-t force, so require it explicitly and let
    # other SOPs run through the pipeline kernel.
    return resolved.is_fr_layout and resolved.sop.name == "TDIST"


def _is_edge_scaled_spmm(resolved: ResolvedPattern) -> bool:
    # The spmm fast path multiplies by the edge value; spmm-like patterns
    # with a NOOP/SEL2ND MOP (plain neighbour sums) take the pipeline.
    return resolved.is_spmm_like and resolved.mop.name == "EDGESCALE"


def fusedmm_jit(
    A,
    X,
    Y=None,
    *,
    pattern: OpPattern | str = "sigmoid_embedding",
    block_size: int = DEFAULT_BLOCK_SIZE,
    num_threads: int = 1,
    parts: Optional[Sequence] = None,
    pool=None,
    out: Optional[np.ndarray] = None,
    row_offset: int = 0,
    **pattern_overrides,
) -> np.ndarray:
    """Compute ``Z = FusedMM(A, X, Y)`` with the JIT backend.

    Accepts the same surface as the other backends.  ``block_size``,
    ``num_threads`` and ``pool`` are accepted for signature compatibility
    but ignored: the compiled kernels are row-fused (no edge blocking) and
    parallelise internally with ``prange``, and because every output row is
    one sequential pass over its own edges the result is bitwise identical
    at any thread, partition or shard count.  ``parts`` selects *which*
    rows are computed; ``out=``/``row_offset=`` write them straight into a
    caller-provided slab (``out[u - row_offset] = z_u``) with no
    full-size allocation — the shard workers' allocation-free path.
    """
    del block_size, num_threads, pool  # signature compatibility only
    resolved = get_pattern(pattern, **pattern_overrides).resolved()
    if X is None:
        if not resolved.is_spmm_like:
            raise BackendError(
                f"pattern {resolved.name!r} needs source features X"
            )
        A = as_csr(A)
        Y = ensure_float_matrix(Y, "Y")
        X_arr = Y  # unused by the spmm path; keeps shapes consistent below
    else:
        A, X_arr, Y = validate_operands(A, X, Y)
    m, d = A.nrows, Y.shape[1]
    w0, w1 = resolve_out_window(out, row_offset, m, d)

    if out is None:
        result_dtype = (
            X_arr.dtype if np.issubdtype(X_arr.dtype, np.floating) else np.float32
        )
        Z = np.zeros((m, d), dtype=result_dtype)
    else:
        Z = out

    if parts is None:
        ranges = [(w0, w1)]
    else:
        ranges = [(p.start, p.stop) for p in parts if p.stop > p.start]
        for start, stop in ranges:
            if start < w0 or stop > w1:
                raise BackendError(
                    f"partition rows [{start}, {stop}) fall outside the "
                    f"output window [{w0}, {w1})"
                )

    indptr, indices, data = A.indptr, A.indices, A.data
    if _is_edge_scaled_spmm(resolved):
        for start, stop in ranges:
            _spmm_rows(indptr, indices, data, Y, Z, start, stop, w0)
    elif resolved.is_sigmoid_embedding:
        for start, stop in ranges:
            _sigmoid_embedding_rows(indptr, indices, X_arr, Y, Z, start, stop, w0)
    elif _is_tdist_fr(resolved):
        for start, stop in ranges:
            _fr_layout_rows(indptr, indices, X_arr, Y, Z, start, stop, w0)
    else:
        codes = _pattern_codes(resolved)
        for start, stop in ranges:
            _pipeline_rows(
                indptr, indices, data, X_arr, Y, Z, start, stop, w0, *codes
            )
    return Z


def get_jit_kernel(pattern: ResolvedPattern | OpPattern | str) -> Callable:
    """A plan-cacheable kernel callable bound to one resolved pattern.

    Matches the specialized-kernel calling convention used by
    :class:`repro.runtime.plan.KernelPlan`; raises
    :class:`~repro.errors.BackendError` for unsupported patterns.
    """
    if isinstance(pattern, ResolvedPattern):
        op_pattern = OpPattern(
            name=pattern.name,
            vop=pattern.vop,
            rop=pattern.rop,
            sop=pattern.sop,
            mop=pattern.mop,
            aop=pattern.aop,
        )
        resolved = pattern
    else:
        op_pattern = get_pattern(pattern)
        resolved = op_pattern.resolved()
    if not jit_supports_pattern(resolved):
        raise BackendError(
            f"the jit backend has no compiled operators for pattern "
            f"{resolved.name!r} (ops {resolved.op_names()}); "
            "use backend='optimized' or 'auto'"
        )

    def jit_kernel(A, X, Y=None, **kwargs):
        return fusedmm_jit(A, X, Y, pattern=op_pattern, **kwargs)

    jit_kernel.__name__ = f"fusedmm_jit_{resolved.name}"
    return jit_kernel


# ---------------------------------------------------------------------- #
# Warm-up
# ---------------------------------------------------------------------- #
def warmup(dtypes=(np.float32,)) -> int:
    """Compile the common kernel signatures on a two-vertex toy problem.

    Shard workers call this once at spawn so the first real request never
    pays compilation latency; with ``cache=True`` the machine code persists
    on disk, so across worker generations the cost is paid once per
    machine.  Returns the number of kernel launches performed (0 when
    Numba is absent — interpreted kernels have nothing to warm).
    """
    if not jit_available():
        return 0
    indptr = np.array([0, 2, 4], dtype=np.int64)
    indices = np.array([0, 1, 0, 1], dtype=np.int64)
    launches = 0
    for dtype in dtypes:
        data = np.ones(4, dtype=dtype)
        X = np.ones((2, 4), dtype=dtype)
        out = np.zeros((2, 4), dtype=dtype)
        _sigmoid_embedding_rows(indptr, indices, X, X, out, 0, 2, 0)
        _fr_layout_rows(indptr, indices, X, X, out, 0, 2, 0)
        _spmm_rows(indptr, indices, data, X, out, 0, 2, 0)
        _pipeline_rows(indptr, indices, data, X, X, out, 0, 2, 0, 3, 1, 1, 1, 0, 1.0)
        launches += 4
    return launches
