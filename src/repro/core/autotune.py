"""Autotuning of FusedMM execution parameters.

The paper's library tunes its generated kernels per architecture: register
blocking factors, which vectors to prioritise for blocking, and a blocking
threshold for large dimensions (Section IV.B).  The tunable parameters of
the Python kernels are

* the blocking **strategy** (row-blocked vs edge-blocked, see
  :mod:`repro.core.optimized`), and
* the **edge block size** (how many edges worth of intermediates are alive
  at once — the register/L2-tile analogue).

:func:`autotune` measures a small number of timed trial runs for each
candidate configuration on (a sample of) the actual operands and returns
the fastest.  Results are cached per ``(pattern, d, nnz-bucket, strategy
set)`` so repeated calls (e.g. every training epoch) pay the tuning cost
once — the same usage model as ATLAS-style install-time tuning, scaled down
to call-time.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from ..sparse import CSRMatrix
from . import jit as jit_backend
from .optimized import DEFAULT_BLOCK_SIZE, fusedmm_edgeblocked, fusedmm_rowblocked
from .patterns import OpPattern, get_pattern
from .validation import validate_operands

__all__ = [
    "TuningResult",
    "ReorderTuning",
    "autotune",
    "autotune_reorder",
    "cached_reorder_tuning",
    "clear_tuning_cache",
    "tuning_cache_info",
    "DEFAULT_BLOCK_CANDIDATES",
]

#: Candidate edge-block sizes swept by default (powers of four around the
#: default, covering L1-sized to LLC-sized intermediate tiles).
DEFAULT_BLOCK_CANDIDATES: Tuple[int, ...] = (1024, 4096, 16384, 65536)


@dataclass(frozen=True)
class TuningResult:
    """Outcome of one autotuning sweep."""

    strategy: str
    block_size: int
    best_time: float
    #: every (strategy, block_size) → measured seconds
    trials: Dict[Tuple[str, int], float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view for reports."""
        return {
            "strategy": self.strategy,
            "block_size": self.block_size,
            "best_time": self.best_time,
            "num_trials": len(self.trials),
        }


@dataclass(frozen=True)
class ReorderTuning:
    """Outcome of one measured reorder-strategy sweep.

    Produced by :func:`autotune_reorder`; ``trials`` maps every candidate
    strategy (including ``"none"``) to its measured per-call seconds, so
    plan descriptions can show *why* a strategy was (not) picked.
    """

    strategy: str
    best_time: float
    trials: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view for reports."""
        return {
            "reorder": self.strategy,
            "best_time": self.best_time,
            "trials": {k: round(v, 6) for k, v in self.trials.items()},
        }


_TUNING_CACHE: Dict[Tuple, TuningResult] = {}
_REORDER_CACHE: Dict[Tuple, ReorderTuning] = {}
#: Entries are a handful of floats, but keys are per matrix fingerprint —
#: bound the count so a serving loop over endless distinct graphs cannot
#: grow the verdict cache without limit.
_REORDER_CACHE_CAPACITY = 256


def clear_tuning_cache() -> None:
    """Drop all cached tuning results (mainly for tests)."""
    _TUNING_CACHE.clear()
    _REORDER_CACHE.clear()


def tuning_cache_info() -> Dict[str, int]:
    """Number of cached tuning results."""
    return {
        "cached_results": len(_TUNING_CACHE),
        "cached_reorder_results": len(_REORDER_CACHE),
    }


def _nnz_bucket(nnz: int) -> int:
    """Bucket nnz on a log2 scale so similar problem sizes share a cache
    entry."""
    return int(math.log2(max(nnz, 1)))


def _sample_rows(A: CSRMatrix, max_nnz: int, seed: int = 0) -> CSRMatrix:
    """A contiguous row slice of ``A`` holding roughly ``max_nnz`` nonzeros,
    used so tuning runs stay cheap on huge graphs."""
    if A.nnz <= max_nnz:
        return A
    stop = int(np.searchsorted(A.indptr, max_nnz, side="left"))
    stop = max(1, min(stop, A.nrows))
    return A.row_slice(0, stop)


def autotune(
    A,
    X,
    Y=None,
    *,
    pattern: OpPattern | str = "sigmoid_embedding",
    strategies: Optional[Sequence[str]] = None,
    block_candidates: Sequence[int] = DEFAULT_BLOCK_CANDIDATES,
    repeats: int = 2,
    max_sample_nnz: int = 200_000,
    num_threads: int = 1,
    use_cache: bool = True,
    **pattern_overrides,
) -> TuningResult:
    """Pick the fastest (strategy, block size) for the given operands.

    Parameters
    ----------
    strategies:
        Subset of ``{"row", "edge", "jit"}`` to try.  The default
        (``None``) sweeps both NumPy blocking strategies and adds the JIT
        backend as a candidate whenever numba is importable and the
        pattern maps onto the compiled dispatch table — a winning ``"jit"``
        trial makes callers pin the jit backend for the planned kernel.
    block_candidates:
        Edge block sizes to sweep (only relevant for the edge strategy).
    repeats:
        Timed repetitions per configuration; the minimum is kept.
    max_sample_nnz:
        Tuning runs on a row prefix of ``A`` holding at most this many
        nonzeros, so tuning stays cheap relative to the real call.
    """
    A_csr, X_arr, Y_arr = validate_operands(A, X, Y)
    resolved = get_pattern(pattern, **pattern_overrides).resolved()
    if strategies is None:
        strategies = ("row", "edge")
        if jit_backend.jit_available() and jit_backend.jit_supports_pattern(resolved):
            strategies = ("row", "edge", "jit")
    key = (
        tuple(sorted(resolved.op_names().items())),
        X_arr.shape[1],
        _nnz_bucket(A_csr.nnz),
        tuple(strategies),
        tuple(block_candidates),
        num_threads,
    )
    if use_cache and key in _TUNING_CACHE:
        return _TUNING_CACHE[key]

    sample = _sample_rows(A_csr, max_sample_nnz)
    Xs = X_arr[: sample.nrows]
    trials: Dict[Tuple[str, int], float] = {}

    def _time(fn, *args, **kwargs) -> float:
        best = float("inf")
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            fn(*args, **kwargs)
            best = min(best, time.perf_counter() - t0)
        return best

    for strategy in strategies:
        if strategy == "row":
            elapsed = _time(
                fusedmm_rowblocked,
                sample,
                Xs,
                Y_arr,
                pattern=pattern,
                num_threads=num_threads,
                **pattern_overrides,
            )
            trials[("row", 0)] = elapsed
        elif strategy == "edge":
            for block in block_candidates:
                elapsed = _time(
                    fusedmm_edgeblocked,
                    sample,
                    Xs,
                    Y_arr,
                    pattern=pattern,
                    block_size=int(block),
                    num_threads=num_threads,
                    **pattern_overrides,
                )
                trials[("edge", int(block))] = elapsed
        elif strategy == "jit":
            elapsed = _time(
                jit_backend.fusedmm_jit,
                sample,
                Xs,
                Y_arr,
                pattern=pattern,
                **pattern_overrides,
            )
            trials[("jit", 0)] = elapsed
        else:
            raise ValueError(f"unknown strategy {strategy!r}")

    (best_strategy, best_block), best_time = min(trials.items(), key=lambda kv: kv[1])
    if best_strategy in ("row", "jit"):
        best_block = DEFAULT_BLOCK_SIZE
    result = TuningResult(
        strategy=best_strategy,
        block_size=best_block,
        best_time=best_time,
        trials=trials,
    )
    if use_cache:
        _TUNING_CACHE[key] = result
    return result


def _reorder_cache_key(memo_key: Tuple, candidates: Tuple[str, ...], repeats: int):
    return (memo_key, tuple(sorted(candidates)), max(1, repeats))


def cached_reorder_tuning(
    memo_key: Tuple, candidates: Sequence[str], *, repeats: int = 1
) -> Optional[ReorderTuning]:
    """A previously measured sweep for this key, or ``None``.

    Lets callers skip *constructing* the candidate runners entirely when
    the sweep has already been measured — trial-plan construction
    (permutation + panel compaction) is itself expensive, so probing the
    cache must not require building what the cache makes unnecessary.
    """
    return _REORDER_CACHE.get(_reorder_cache_key(memo_key, tuple(candidates), repeats))


def autotune_reorder(
    runners: Dict[str, Callable[[], object]],
    *,
    repeats: int = 1,
    memo_key: Optional[Tuple] = None,
    use_cache: bool = True,
) -> ReorderTuning:
    """Pick the fastest vertex-reordering strategy by measurement.

    ``runners`` maps each candidate strategy name to a zero-argument
    callable that performs one *complete* planned call under that strategy
    — including the per-call operand permutation and the inverse mapping
    of the output — so the measured seconds are exactly what an epoch
    loop would pay.  The plan builder supplies the runners (it owns the
    resolved kernel and the memoised permutations); this function owns
    timing, selection and caching.

    Unlike the strategy/block sweep of :func:`autotune`, reorder decisions
    are *matrix-specific* — locality is a property of this graph's
    structure — so the cache is keyed by the caller-supplied ``memo_key``
    (typically fingerprint + kernel configuration), never by an nnz
    bucket.
    """
    if not runners:
        raise ValueError("autotune_reorder needs at least one candidate runner")
    if memo_key is not None:
        key = _reorder_cache_key(memo_key, tuple(sorted(runners)), repeats)
        if use_cache and key in _REORDER_CACHE:
            return _REORDER_CACHE[key]
    trials: Dict[str, float] = {}
    for name, run in runners.items():
        # One untimed warm-up per candidate: the first call may pay
        # one-off costs the steady state never sees (numba compilation of
        # a shared kernel, lazy buffer setup) — without it the first
        # candidate measured would absorb them and the cached verdict
        # would be permanently biased against it.
        run()
        best = float("inf")
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            run()
            best = min(best, time.perf_counter() - t0)
        trials[name] = best
    best_name, best_time = min(trials.items(), key=lambda kv: kv[1])
    result = ReorderTuning(strategy=best_name, best_time=best_time, trials=trials)
    if memo_key is not None and use_cache:
        while len(_REORDER_CACHE) >= _REORDER_CACHE_CAPACITY:
            _REORDER_CACHE.pop(next(iter(_REORDER_CACHE)))
        _REORDER_CACHE[key] = result
    return result
