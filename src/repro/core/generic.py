"""Reference implementation of FusedMM — Algorithm 1 of the paper.

This is the faithful per-row, per-nonzero translation of the pseudo-code:

.. code-block:: text

    procedure UPDATE_U(a_u, x_u, Y):
        z_u ← identity of AOP
        for each v with a_uv ≠ 0:
            y_v ← Y[v, :]
            w   ← VOP(x_u, y_v, a_uv)
            s   ← ROP(w)                (skipped when ROP is NOOP)
            h   ← SOP(s or w)
            m   ← MOP(h, y_v, a_uv, w)
            z_u ← AOP(z_u, m)
        return z_u

It accepts arbitrary Python callables (through the operator registry) and
is used for three things:

1. as the always-correct oracle the optimized/specialized/generated kernels
   are property-tested against,
2. as the fallback backend for user-defined operators that have no batched
   implementation,
3. as the "FusedMM (unoptimized)" row of Table VI (the paper's general
   implementation before SIMD vectorization).

It never materialises the intermediate message matrix H — that is the
entire point of the fusion — but it also makes no attempt at vectorization
beyond what the individual operators do internally.
"""

from __future__ import annotations

import numpy as np

from .patterns import OpPattern, ResolvedPattern, get_pattern
from .validation import resolve_out_window, validate_operands

__all__ = ["fusedmm_generic", "update_u"]


def update_u(
    pattern: ResolvedPattern,
    x_u: np.ndarray,
    neighbour_ids: np.ndarray,
    edge_vals: np.ndarray,
    Y: np.ndarray,
    out: np.ndarray,
) -> np.ndarray:
    """Message generation + aggregation for one vertex (UPDATE_U in Alg. 1).

    Parameters
    ----------
    pattern:
        Resolved operator pattern.
    x_u:
        ``(d,)`` feature vector of the target vertex.
    neighbour_ids, edge_vals:
        Column indices and values of the vertex's adjacency row.
    Y:
        Full ``(n, d)`` destination feature matrix.
    out:
        ``(d,)`` output row, already initialised to the AOP identity; updated
        in place and returned.
    """
    vop, rop, sop, mop, aop = pattern.vop, pattern.rop, pattern.sop, pattern.mop, pattern.aop
    for v, a_uv in zip(neighbour_ids, edge_vals):
        y_v = Y[v]
        w = y_v if vop.is_noop else vop.edge_fn(x_u, y_v, a_uv)
        if rop.is_noop:
            s = w
        else:
            s = rop.edge_fn(w)
        h = s if sop.is_noop else sop.edge_fn(s)
        m = h if mop.is_noop else mop.edge_fn(h, y_v, a_uv, w)
        out[...] = aop.edge_fn(out, m)
    return out


def fusedmm_generic(
    A,
    X,
    Y=None,
    *,
    pattern: OpPattern | str = "sigmoid_embedding",
    out: np.ndarray | None = None,
    row_offset: int = 0,
    **pattern_overrides,
) -> np.ndarray:
    """Compute ``Z = FusedMM(A, X, Y)`` with the reference algorithm.

    Parameters
    ----------
    A, X, Y:
        The operands of Fig. 2 (``Y`` defaults to ``X`` for square ``A``).
    pattern:
        A pattern name, an :class:`~repro.core.patterns.OpPattern`, or
        ``None`` plus explicit ``vop=...``/``rop=...`` overrides.
    out, row_offset:
        Optional preallocated output slab: row ``u`` of the result is
        written to ``out[u - row_offset]`` and only the rows the slab
        covers are computed.  Accumulation still happens in float64 (cast
        into ``out`` once per row), so results match the plain path
        bitwise.
    """
    A, X, Y = validate_operands(A, X, Y)
    resolved = get_pattern(pattern, **pattern_overrides).resolved()
    m, d = X.shape
    w0, w1 = resolve_out_window(out, row_offset, m, d)
    identity = resolved.aop.accumulator_identity
    Z = np.full((w1 - w0, d), identity, dtype=np.float64)
    indptr, indices, data = A.indptr, A.indices, A.data
    for u in range(w0, w1):
        lo, hi = indptr[u], indptr[u + 1]
        if lo == hi:
            # No neighbours: the output row stays at the AOP identity for
            # max/min accumulators but is defined as zero for sums; for
            # consistency with the unfused baselines we zero empty rows.
            Z[u - w0] = 0.0
            continue
        update_u(resolved, X[u], indices[lo:hi], data[lo:hi], Y, Z[u - w0])
    # Rows whose accumulator never received a message keep ±inf for AMAX /
    # AMIN; normalise those to zero as well (cannot happen after the loop
    # above, but user AOPs may produce non-finite values legitimately).
    if out is None:
        return Z.astype(np.float32 if X.dtype == np.float32 else X.dtype)
    out[...] = Z
    return out
