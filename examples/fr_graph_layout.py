#!/usr/bin/env python
"""Force-directed graph layout with the FR model (paper Fig. 1(a)).

Runs the Fruchterman–Reingold layout driver on a 2-D grid graph (whose
correct layout is easy to eyeball even as ASCII art) and on a synthetic
social-network twin.  The attractive forces on edges are computed by the
``fr_layout`` FusedMM pattern — the vector-message workload whose unfused
version is the memory-heavy column of Table VI.

Run with:  python examples/fr_graph_layout.py
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.apps import FRLayout, FRLayoutConfig
from repro.baselines import unfused_memory_bytes
from repro.graphs import Graph, load_dataset, regular_grid
from repro.perf import fusedmm_memory_bytes


def ascii_plot(positions: np.ndarray, width: int = 48, height: int = 22) -> str:
    """Render 2-D positions as a small ASCII scatter plot."""
    canvas = [[" "] * width for _ in range(height)]
    mins = positions.min(axis=0)
    span = np.maximum(positions.max(axis=0) - mins, 1e-9)
    for x, y in positions:
        col = int((x - mins[0]) / span[0] * (width - 1))
        row = int((y - mins[1]) / span[1] * (height - 1))
        canvas[row][col] = "o"
    return "\n".join("".join(line) for line in canvas)


def main() -> None:
    # A 10x10 grid: the layout should spread it back into a lattice-like
    # cloud rather than the random initial blob.
    grid = Graph(regular_grid(10), name="grid10x10")
    layout = FRLayout(grid, FRLayoutConfig(iterations=60, seed=1, repulsive_samples=8))
    before = layout.edge_length_stats()
    positions = layout.run()
    after = layout.edge_length_stats()
    print("grid 10x10 layout (ASCII):")
    print(ascii_plot(positions))
    print(
        f"mean edge length: {before['mean']:.3f} -> {after['mean']:.3f} "
        f"(std {before['std']:.3f} -> {after['std']:.3f})"
    )
    print(f"mean kernel time per iteration: {np.mean(layout.iteration_seconds) * 1e3:.2f} ms")

    # The memory argument of Fig. 10(b): for the FR pattern the unfused
    # pipeline stores d floats per edge; show the model numbers for a
    # realistic graph.
    social = load_dataset("flickr", scale=0.5)
    d = 128
    fused_mb = fusedmm_memory_bytes(social.adjacency, d).total_megabytes
    unfused_mb = unfused_memory_bytes(social.adjacency, d, pattern="fr_layout") / 2**20
    print()
    print(
        f"FR-model memory on {social.name} twin at d={d}: "
        f"FusedMM {fused_mb:.1f} MB vs unfused {unfused_mb:.1f} MB "
        f"({unfused_mb / fused_mb:.1f}x)"
    )


if __name__ == "__main__":
    main()
