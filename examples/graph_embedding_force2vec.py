#!/usr/bin/env python
"""Graph embedding with Force2Vec on top of FusedMM (paper Section V.D).

Trains Force2Vec embeddings on the synthetic Cora twin with two kernel
backends — the fused FusedMM kernels and the unfused DGL-style pipeline —
and verifies that (a) the fused backend is at least as fast per epoch and
(b) both backends reach the same node-classification F1, which is the
paper's embedding-quality claim.

Run with:  python examples/graph_embedding_force2vec.py [--epochs N]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.apps import Force2Vec, Force2VecConfig, evaluate_embeddings
from repro.bench import format_table
from repro.graphs import load_dataset


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="cora", help="dataset name (default: cora)")
    parser.add_argument("--epochs", type=int, default=30, help="training epochs per backend")
    parser.add_argument("--dim", type=int, default=64, help="embedding dimension")
    args = parser.parse_args()

    graph = load_dataset(args.dataset)
    print(f"graph: {graph.name}, {graph.num_vertices} vertices, {graph.num_classes} classes")

    rows = []
    for backend in ("fused", "unfused"):
        config = Force2VecConfig(
            dim=args.dim,
            epochs=args.epochs,
            learning_rate=0.1,
            batch_size=256,
            seed=0,
            backend=backend,
        )
        model = Force2Vec(graph, config)
        embeddings = model.train()
        metrics = evaluate_embeddings(embeddings, graph.labels, seed=0)
        rows.append(
            {
                "backend": backend,
                "seconds_per_epoch": round(model.average_epoch_seconds(), 4),
                "f1_micro": round(metrics["f1_micro"], 4),
                "f1_macro": round(metrics["f1_macro"], 4),
                "final_loss": round(model.loss_estimate(seed=1), 4),
            }
        )

    print()
    print(format_table(rows, title=f"Force2Vec on {graph.name} (d={args.dim}, {args.epochs} epochs)"))
    print()
    print(
        "Both backends execute the same mathematics, so the F1 columns match; "
        "the fused backend avoids materialising the per-edge messages, so its "
        "epoch time is lower — the Table VIII effect at laptop scale."
    )


if __name__ == "__main__":
    main()
