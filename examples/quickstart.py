#!/usr/bin/env python
"""Quickstart: run FusedMM on a graph in five lines.

This example shows the minimal public-API workflow:

1. load a graph (a synthetic twin of one of the paper's datasets),
2. initialise node features,
3. call ``fusedmm`` with one of the built-in Table III patterns,
4. compare against the unfused SDDMM → SpMM pipeline (same result, more
   memory, more time),
5. plan a reusable kernel with autotuning for repeated calls.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import FusedMM, fusedmm
from repro.baselines import unfused_fusedmm
from repro.graphs import load_dataset, random_features


def main() -> None:
    # 1. A synthetic twin of the paper's Pubmed graph (19.7K vertices).
    graph = load_dataset("pubmed")
    print(f"graph: {graph.name}, {graph.num_vertices} vertices, {graph.num_edges} edges")

    # 2. 64-dimensional node features (the X = Y whole-graph case).
    X = random_features(graph.num_vertices, 64, seed=0)

    # 3. One fused call: z_u = sum_v sigmoid(x_u . x_v) x_v
    t0 = time.perf_counter()
    Z = fusedmm(graph.adjacency, X, pattern="sigmoid_embedding")
    fused_time = time.perf_counter() - t0
    print(f"fused kernel:    Z shape {Z.shape}, {fused_time * 1e3:.1f} ms")

    # 4. The unfused (DGL-style) pipeline computes the same thing but
    #    materialises the intermediate edge messages.
    t0 = time.perf_counter()
    Z_unfused = unfused_fusedmm(graph.adjacency, X, X, pattern="sigmoid_embedding")
    unfused_time = time.perf_counter() - t0
    print(
        f"unfused pipeline: max |diff| = {np.abs(Z - Z_unfused).max():.2e}, "
        f"{unfused_time * 1e3:.1f} ms "
        f"({unfused_time / max(fused_time, 1e-9):.2f}x the fused time)"
    )

    # 5. For repeated calls (e.g. a training loop), plan the kernel once.
    kernel = FusedMM(graph.adjacency, pattern="sigmoid_embedding", autotune=True, autotune_dim=64)
    print("planned kernel:", kernel.describe())
    t0 = time.perf_counter()
    for _ in range(5):
        Z = kernel(X)
    print(f"5 planned calls: {(time.perf_counter() - t0) * 1e3:.1f} ms total")


if __name__ == "__main__":
    main()
