#!/usr/bin/env python
"""Reproduce a slice of the paper's kernel comparison on your machine.

Runs the Table VI-style three-way comparison (unfused DGL-style pipeline vs
the reference FusedMM vs the optimized FusedMM) for a chosen graph across a
dimension sweep, prints the table, and shows the roofline numbers of
Fig. 7 for the same graph.

Run with:  python examples/kernel_comparison.py [--graph youtube] [--dims 32 128]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench import compare_kernels, format_table
from repro.graphs import load_dataset, random_features
from repro.core import fusedmm
from repro.perf import measure_stream_bandwidth, roofline_point, time_kernel


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--graph", default="youtube", help="dataset name")
    parser.add_argument("--scale", type=float, default=0.5, help="dataset scale factor")
    parser.add_argument("--dims", type=int, nargs="+", default=[32, 128])
    parser.add_argument("--pattern", default="sigmoid_embedding")
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args()

    graph = load_dataset(args.graph, scale=args.scale)
    print(f"graph: {graph.name}, {graph.num_vertices} vertices, {graph.num_edges} edges, "
          f"avg degree {graph.adjacency.avg_degree():.1f}")

    rows = []
    for d in args.dims:
        rows.append(
            compare_kernels(
                graph.name,
                graph.adjacency,
                d,
                pattern=args.pattern,
                repeats=args.repeats,
            )
        )
    print()
    print(format_table(rows, title="Kernel comparison (Table VI protocol)"))

    # Roofline point (Fig. 7) for the largest dimension.
    d = max(args.dims)
    X = random_features(graph.num_vertices, d, seed=0)
    timing = time_kernel(
        fusedmm, graph.adjacency, X, pattern=args.pattern, repeats=args.repeats
    )
    bw = measure_stream_bandwidth()
    point = roofline_point(graph.name, graph.adjacency, d, timing.mean, bandwidth_gbs=bw)
    print()
    print(format_table([point.as_row()], title=f"Roofline point at d={d} (Fig. 7 protocol)"))


if __name__ == "__main__":
    main()
