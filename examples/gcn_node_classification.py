#!/usr/bin/env python
"""Node classification with a two-layer GCN whose aggregation runs on the
FusedMM SpMM specialisation (paper Fig. 1(c) / Table III row 3).

The script trains the same GCN with three aggregation backends — the fused
kernel, the unfused DGL-style pipeline, and the vendor (SciPy-compiled)
SpMM — and reports test accuracy and per-epoch time for each, demonstrating
that the kernel choice changes performance but not the learned model.

Run with:  python examples/gcn_node_classification.py [--dataset pubmed]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.apps import GCN, GCNConfig
from repro.baselines import scipy_available
from repro.bench import format_table
from repro.graphs import load_dataset, one_hot_labels


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="cora", help="labelled dataset (cora or pubmed)")
    parser.add_argument("--epochs", type=int, default=60)
    parser.add_argument("--hidden", type=int, default=16)
    parser.add_argument("--train-fraction", type=float, default=0.3)
    args = parser.parse_args()

    graph = load_dataset(args.dataset)
    if graph.num_classes == 0:
        raise SystemExit(f"dataset {args.dataset!r} has no labels; use cora or pubmed")

    # Features: noisy one-hot labels on the training vertices only, zeros
    # elsewhere — a standard semi-supervised GCN setup for synthetic data.
    rng = np.random.default_rng(0)
    n = graph.num_vertices
    train_mask = rng.random(n) < args.train_fraction
    features = one_hot_labels(graph.labels, graph.num_classes)
    features[~train_mask] = 0.0
    features = features + 0.05 * rng.standard_normal(features.shape).astype(np.float32)
    graph = graph.with_features(features.astype(np.float32))

    backends = ["fused", "unfused"] + (["vendor"] if scipy_available() else [])
    rows = []
    for backend in backends:
        gcn = GCN(
            graph,
            config=GCNConfig(
                hidden_dim=args.hidden,
                epochs=args.epochs,
                learning_rate=0.3,
                seed=0,
                backend=backend,
            ),
        )
        history = gcn.fit(train_mask=train_mask)
        rows.append(
            {
                "backend": backend,
                "test_accuracy": round(gcn.accuracy(mask=~train_mask), 4),
                "train_accuracy": round(history[-1]["train_accuracy"], 4),
                "seconds_per_epoch": round(
                    float(np.mean([h["seconds"] for h in history])), 4
                ),
                "final_loss": round(history[-1]["loss"], 4),
            }
        )

    print(format_table(rows, title=f"2-layer GCN on {graph.name} ({args.epochs} epochs)"))
    print()
    print(
        "All backends compute the same aggregation Â·M, so the accuracies agree; "
        "the fused SpMM specialisation is the kernel compared against MKL in Table VII."
    )


if __name__ == "__main__":
    main()
