#!/usr/bin/env python
"""Defining your own FusedMM operators and patterns (paper Section III).

FusedMM's five steps (VOP, ROP, SOP, MOP, AOP) accept user-defined
functions.  This example builds two custom message-passing schemes that are
not shipped as built-ins:

1. **Gaussian-kernel aggregation** — messages weighted by
   ``exp(-||x_u - y_v||^2 / (2 sigma^2))``, a common similarity kernel:
   registered as new operators and executed by the generic and optimized
   backends.
2. **MLP-message GNN layer with max pooling** (Table III row 4) — the
   built-in ``gnn_mlp`` pattern with a user MLP in the VOP slot.

Both are validated against a straightforward dense NumPy computation.

Run with:  python examples/custom_operators.py
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import fusedmm
from repro.core import OpPattern, Operator, make_mlp_vop, register_op, register_pattern
from repro.core.operators import OpKind
from repro.graphs import load_dataset, random_features, xavier_init


def build_gaussian_pattern(sigma: float = 1.0) -> OpPattern:
    """Register the operators of the Gaussian-similarity aggregation and
    return its pattern:  z_u = sum_v exp(-||x_u-y_v||^2 / 2s^2) * y_v."""

    gauss = Operator(
        name="GAUSS_SOP",
        kinds=(OpKind.SOP,),
        edge_fn=lambda s, *rest, _s2=2 * sigma * sigma: np.exp(-np.square(s) / _s2),
        batch_fn=lambda s, *rest, _s2=2 * sigma * sigma: np.exp(-np.square(s) / _s2),
    )
    register_op(gauss, overwrite=True)

    pattern = OpPattern(
        name="gaussian_aggregation",
        vop="SUB",        # x_u - y_v
        rop="NORM",       # ||x_u - y_v||
        sop="GAUSS_SOP",  # exp(-dist^2 / 2s^2)
        mop="MUL",        # scale y_v by the similarity
        aop="ASUM",
        description="Gaussian-kernel weighted neighbour aggregation",
    )
    register_pattern(pattern, overwrite=True)
    return pattern


def dense_gaussian_reference(A_dense, X, Y, sigma=1.0):
    """Straightforward dense computation of the Gaussian aggregation."""
    diff = X[:, None, :] - Y[None, :, :]
    dist2 = np.sum(diff**2, axis=2)
    weights = np.exp(-dist2 / (2 * sigma * sigma)) * (A_dense != 0)
    return weights @ Y


def main() -> None:
    graph = load_dataset("cora", scale=0.2)
    d = 16
    X = random_features(graph.num_vertices, d, seed=0)

    # --- 1. Gaussian-kernel aggregation ------------------------------- #
    pattern = build_gaussian_pattern(sigma=1.0)
    Z_opt = fusedmm(graph.adjacency, X, pattern=pattern, backend="optimized")
    Z_gen = fusedmm(graph.adjacency, X, pattern=pattern, backend="generic")
    Z_ref = dense_gaussian_reference(graph.adjacency.to_dense(), X, X, sigma=1.0)
    print("Gaussian aggregation")
    print(f"  optimized vs generic max diff: {np.abs(Z_opt - Z_gen).max():.2e}")
    print(f"  optimized vs dense reference : {np.abs(Z_opt - Z_ref).max():.2e}")

    # --- 2. MLP-message GNN with max pooling --------------------------- #
    W1 = xavier_init(2 * d, 32, seed=1)
    W2 = xavier_init(32, d, seed=2)
    mlp = make_mlp_vop(W1, W2, name="EXAMPLE_MLP")
    Z_mlp = fusedmm(graph.adjacency, X, pattern="gnn_mlp", vop=mlp, backend="auto")
    print()
    print("MLP-message GNN layer (gnn_mlp pattern with a user VOP)")
    print(f"  output shape: {Z_mlp.shape}, finite: {bool(np.isfinite(Z_mlp).all())}")
    print(
        "  note: patterns with user operators are executed by the optimized "
        "backend; the code generator only inlines registered standard ops."
    )


if __name__ == "__main__":
    main()
