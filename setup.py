"""Setup shim.

All project metadata lives in ``pyproject.toml`` (name, dynamic version,
dependencies, the ``repro`` console script and the src layout); this file
exists so the package can be installed in environments whose setuptools
lacks PEP 660 editable-wheel support (legacy ``pip install -e .`` falls
back to ``setup.py develop``).
"""

from setuptools import setup

setup()
