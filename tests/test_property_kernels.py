"""Property-based tests (hypothesis) for the FusedMM kernels.

The central invariant: for any random sparse operand and any pattern built
from standard operators, every backend computes the same result as the
Algorithm 1 reference, and the fused result equals the unfused
SDDMM→SpMM pipeline.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines import unfused_fusedmm
from repro.core import (
    fusedmm_edgeblocked,
    fusedmm_generic,
    fusedmm_rowblocked,
    compile_kernel,
    get_pattern,
    supports_pattern,
)
from repro.runtime import KernelRequest, KernelRuntime
from repro.sparse import COOMatrix, CSRMatrix

settings.register_profile("repro-kernels", deadline=None, max_examples=25)
settings.load_profile("repro-kernels")

ATOL = 2e-3


@st.composite
def problems(draw, max_rows=16, max_cols=16, max_d=6):
    """A random (A, X, Y) problem with float32 operands."""
    nrows = draw(st.integers(min_value=1, max_value=max_rows))
    ncols = draw(st.integers(min_value=1, max_value=max_cols))
    d = draw(st.integers(min_value=1, max_value=max_d))
    nnz = draw(st.integers(min_value=0, max_value=nrows * ncols))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, nrows, size=nnz)
    cols = rng.integers(0, ncols, size=nnz)
    vals = rng.uniform(0.1, 2.0, size=nnz).astype(np.float32)
    A = CSRMatrix.from_coo(COOMatrix(nrows, ncols, rows, cols, vals))
    X = rng.standard_normal((nrows, d)).astype(np.float32)
    Y = rng.standard_normal((ncols, d)).astype(np.float32)
    return A, X, Y


PATTERN_NAMES = st.sampled_from(["sigmoid_embedding", "fr_layout", "gcn", "spmm", "sddmm_dot"])


@given(problems(), PATTERN_NAMES)
def test_blocked_kernels_match_reference(problem, pattern):
    A, X, Y = problem
    ref = fusedmm_generic(A, X, Y, pattern=pattern)
    assert np.allclose(fusedmm_rowblocked(A, X, Y, pattern=pattern), ref, atol=ATOL)
    assert np.allclose(
        fusedmm_edgeblocked(A, X, Y, pattern=pattern, block_size=5), ref, atol=ATOL
    )


@given(problems(), PATTERN_NAMES)
def test_fused_equals_unfused_pipeline(problem, pattern):
    A, X, Y = problem
    fused = fusedmm_generic(A, X, Y, pattern=pattern)
    unfused = unfused_fusedmm(A, X, Y, pattern=pattern)
    assert np.allclose(fused, unfused, atol=ATOL)


@given(problems(), PATTERN_NAMES)
def test_generated_kernel_matches_reference(problem, pattern):
    A, X, Y = problem
    resolved = get_pattern(pattern).resolved()
    assert supports_pattern(resolved)
    kernel = compile_kernel(resolved)
    ref = fusedmm_generic(A, X, Y, pattern=pattern)
    assert np.allclose(kernel(A, X, Y, block_size=7), ref, atol=ATOL)


@given(problems())
def test_gcn_linearity_in_y(problem):
    """The SpMM-like pattern is linear in Y: F(A, X, aY) == a F(A, X, Y)."""
    A, X, Y = problem
    base = fusedmm_generic(A, X, Y, pattern="gcn")
    scaled = fusedmm_generic(A, X, (2.0 * Y).astype(np.float32), pattern="gcn")
    assert np.allclose(scaled, 2.0 * base, atol=1e-2)


@given(problems())
def test_output_rows_of_isolated_vertices_are_zero(problem):
    A, X, Y = problem
    Z = fusedmm_generic(A, X, Y, pattern="sigmoid_embedding")
    empty = A.row_degrees() == 0
    assert np.allclose(Z[empty], 0.0)


@given(problems(), st.integers(min_value=1, max_value=4))
def test_thread_invariance(problem, threads):
    A, X, Y = problem
    single = fusedmm_edgeblocked(A, X, Y, pattern="sigmoid_embedding", num_threads=1)
    multi = fusedmm_edgeblocked(A, X, Y, pattern="sigmoid_embedding", num_threads=threads)
    assert np.allclose(single, multi, atol=1e-5)


@given(problems(), PATTERN_NAMES)
def test_runtime_run_matches_generic(problem, pattern):
    """KernelRuntime.run agrees with the Algorithm 1 reference for random
    CSR operands across all Table III patterns."""
    A, X, Y = problem
    ref = fusedmm_generic(A, X, Y, pattern=pattern)
    rt = KernelRuntime(num_threads=1, cache_size=4)
    assert np.allclose(rt.run(A, X, Y, pattern=pattern), ref, atol=ATOL)
    # A second (plan-cached) call computes the same thing.
    assert np.allclose(rt.run(A, X, Y, pattern=pattern), ref, atol=ATOL)


@given(problems(), PATTERN_NAMES)
def test_runtime_batch_matches_generic(problem, pattern):
    """run_batch equals the generic reference regardless of which schedule
    (packed / single / split) the request lands on."""
    A, X, Y = problem
    ref = fusedmm_generic(A, X, Y, pattern=pattern)
    # Tiny thresholds force interesting scheduling decisions even for the
    # small matrices hypothesis generates.
    rt = KernelRuntime(num_threads=1, pack_nnz=64, split_nnz=96)
    outs = rt.run_batch([KernelRequest(A, X, Y, pattern=pattern)] * 3)
    for Z in outs:
        assert np.allclose(Z, ref, atol=ATOL)


@given(problems(), PATTERN_NAMES, st.integers(min_value=1, max_value=4))
def test_runtime_thread_invariance(problem, pattern, threads):
    """Runtime results are bitwise identical across pool widths (the
    determinism invariant of core/parallel.py, inherited by the runtime's
    nnz-aware scheduling)."""
    A, X, Y = problem
    rt1 = KernelRuntime(num_threads=1, split_nnz=64)
    rtn = KernelRuntime(num_threads=threads, split_nnz=64)
    try:
        assert np.array_equal(
            rt1.run(A, X, Y, pattern=pattern), rtn.run(A, X, Y, pattern=pattern)
        )
    finally:
        rtn.close()


@given(problems())
def test_fr_antisymmetry_on_symmetric_graphs(problem):
    """On a symmetric unweighted graph the FR forces sum to ~zero (every
    edge's pull on u is the opposite of its pull on v)."""
    A, X, _ = problem
    if A.nrows != A.ncols:
        return
    sym = CSRMatrix.from_coo(A.to_coo().symmetrize())
    ones = sym.copy()
    ones.data = np.ones_like(ones.data)
    Z = fusedmm_generic(ones, X, X, pattern="fr_layout")
    assert np.allclose(Z.sum(axis=0), 0.0, atol=1e-2)
