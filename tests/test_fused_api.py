"""Unit tests for the public fusedmm() dispatcher and the FusedMM class."""

import numpy as np
import pytest

from repro import FusedMM, fusedmm
from repro.core import BACKENDS
from repro.core.fused import _Plan  # noqa: F401 - ensure private import works
from repro.errors import BackendError
from repro.sparse import random_csr
from _helpers import make_xy


@pytest.fixture(scope="module")
def problem():
    A = random_csr(100, 100, density=0.05, seed=8)
    X, Y = make_xy(A, 16, seed=1)
    return A, X, Y


def test_all_backends_listed():
    assert set(BACKENDS) == {
        "auto",
        "jit",
        "generic",
        "optimized",
        "specialized",
        "generated",
    }


@pytest.mark.parametrize("backend", BACKENDS)
def test_every_backend_runs_embedding(problem, backend):
    A, X, Y = problem
    Z = fusedmm(A, X, Y, pattern="sigmoid_embedding", backend=backend)
    assert Z.shape == X.shape
    assert np.isfinite(Z).all()


def test_unknown_backend_rejected(problem):
    A, X, Y = problem
    with pytest.raises(BackendError):
        fusedmm(A, X, Y, backend="cuda")


def test_specialized_backend_requires_known_pattern(problem):
    A, X, Y = problem
    with pytest.raises(BackendError):
        fusedmm(A, X, Y, pattern="sddmm_dot", backend="specialized")


def test_generated_backend_requires_templates(problem):
    from repro.core import make_mlp_vop
    from repro.graphs.features import xavier_init

    A, X, Y = problem
    mlp = make_mlp_vop(xavier_init(32, 16, seed=0))
    with pytest.raises(BackendError):
        fusedmm(A, X, Y, pattern="gnn_mlp", vop=mlp, backend="generated")


def test_auto_falls_back_for_user_ops(problem):
    from repro.core import make_mlp_vop
    from repro.graphs.features import xavier_init

    A, X, Y = problem
    mlp = make_mlp_vop(xavier_init(32, 16, seed=0))
    Z = fusedmm(A, X, Y, pattern="gnn_mlp", vop=mlp, backend="auto")
    assert Z.shape == X.shape


def test_pattern_overrides_via_kwargs(problem):
    A, X, Y = problem
    Z_relu = fusedmm(A, X, Y, pattern="sigmoid_embedding", sop="RELU")
    Z_sig = fusedmm(A, X, Y, pattern="sigmoid_embedding")
    assert not np.allclose(Z_relu, Z_sig)


def test_accepts_scipy_and_dense_inputs(problem):
    A, X, Y = problem
    Z_csr = fusedmm(A, X, Y, pattern="gcn")
    Z_scipy = fusedmm(A.to_scipy(), X, Y, pattern="gcn")
    Z_dense = fusedmm(A.to_dense(), X, Y, pattern="gcn")
    assert np.allclose(Z_csr, Z_scipy, atol=1e-5)
    assert np.allclose(Z_csr, Z_dense, atol=1e-5)


def test_strategy_argument(problem):
    A, X, Y = problem
    Z_row = fusedmm(A, X, Y, pattern="gcn", backend="optimized", strategy="row")
    Z_edge = fusedmm(A, X, Y, pattern="gcn", backend="optimized", strategy="edge")
    assert np.allclose(Z_row, Z_edge, atol=1e-4)
    with pytest.raises(ValueError):
        fusedmm(A, X, Y, backend="optimized", strategy="diagonal")


# ------------------------------------------------------------------ #
# FusedMM planned-kernel class
# ------------------------------------------------------------------ #
def test_fusedmm_class_basic(problem):
    A, X, Y = problem
    kernel = FusedMM(A, pattern="sigmoid_embedding")
    Z = kernel(X, Y)
    assert np.allclose(Z, fusedmm(A, X, Y, pattern="sigmoid_embedding"), atol=1e-5)


def test_fusedmm_class_square_y_defaults(problem):
    A, X, _ = problem
    kernel = FusedMM(A, pattern="gcn")
    Z = kernel(X)
    assert Z.shape == X.shape


def test_fusedmm_class_describe(problem):
    A, X, Y = problem
    kernel = FusedMM(A, pattern="gcn", num_threads=2)
    info = kernel.describe()
    assert info["pattern"] == "gcn"
    assert info["num_threads"] == 2
    assert info["nnz"] == A.nnz
    assert info["partitions"] == 2


def test_fusedmm_class_autotune(problem):
    A, X, Y = problem
    kernel = FusedMM(A, pattern="sigmoid_embedding", autotune=True, autotune_dim=8)
    info = kernel.describe()
    assert "tuning" in info
    assert kernel.plan.strategy in ("row", "edge")
    Z = kernel(X, Y)
    assert np.allclose(Z, fusedmm(A, X, Y, pattern="sigmoid_embedding"), atol=1e-4)


def test_fusedmm_class_unknown_backend(problem):
    A, _, _ = problem
    with pytest.raises(BackendError):
        FusedMM(A, backend="gpu")


def test_fusedmm_class_repr(problem):
    A, _, _ = problem
    assert "FusedMM" in repr(FusedMM(A))
