"""Unit tests for the batched kernel runtime (repro.runtime).

Covers the contracts the runtime advertises:

* plan-cache hit/miss/eviction accounting and LRU behaviour,
* content-keyed fingerprints (same matrix content → same plan),
* ``run``/``run_batch``/``submit`` results bitwise equal to sequential
  single-threaded ``fusedmm`` calls,
* thread-count invariance (the determinism invariant of core/parallel.py,
  extended to the runtime's nnz-aware scheduling),
* the streaming epoch API used by the apps.
"""

import numpy as np
import pytest

from repro.core.fused import fusedmm
from repro.errors import BackendError, ShapeError
from repro.graphs import random_features
from repro.runtime import (
    KernelRequest,
    KernelRuntime,
    matrix_fingerprint,
    pack_requests,
)
from repro.sparse import CSRMatrix, random_csr

from _helpers import make_xy

PATTERNS = ["sigmoid_embedding", "fr_layout", "gcn", "spmm"]


@pytest.fixture
def small_problem():
    A = random_csr(80, 80, density=0.05, seed=3)
    X, Y = make_xy(A, 12, seed=1)
    return A, X, Y


# ---------------------------------------------------------------------- #
# Fingerprints
# ---------------------------------------------------------------------- #
def test_fingerprint_is_content_keyed():
    A = random_csr(50, 50, density=0.1, seed=0)
    B = CSRMatrix(A.nrows, A.ncols, A.indptr.copy(), A.indices.copy(), A.data.copy())
    assert matrix_fingerprint(A) == matrix_fingerprint(B)


def test_fingerprint_differs_for_different_values():
    A = random_csr(50, 50, density=0.1, seed=0)
    C = CSRMatrix(A.nrows, A.ncols, A.indptr.copy(), A.indices.copy(), A.data * 2.0)
    assert matrix_fingerprint(A) != matrix_fingerprint(C)


def test_fingerprint_memo_survives_repeat_calls():
    A = random_csr(30, 30, density=0.1, seed=1)
    assert matrix_fingerprint(A) == matrix_fingerprint(A)
    assert matrix_fingerprint(A, use_memo=False) == matrix_fingerprint(A)


# ---------------------------------------------------------------------- #
# Plan-cache accounting
# ---------------------------------------------------------------------- #
def test_plan_cache_hit_miss_accounting(small_problem):
    A, X, Y = small_problem
    rt = KernelRuntime(num_threads=1, cache_size=8)
    rt.run(A, X, Y)
    stats = rt.cache_stats()
    assert (stats.hits, stats.misses) == (0, 1)
    rt.run(A, X, Y)
    rt.run(A, X, Y)
    stats = rt.cache_stats()
    assert (stats.hits, stats.misses) == (2, 1)
    assert stats.size == 1
    assert 0.0 < stats.hit_rate < 1.0


def test_plan_cache_content_keyed_across_instances(small_problem):
    """A rebuilt matrix with identical content hits the same plan."""
    A, X, Y = small_problem
    clone = CSRMatrix(A.nrows, A.ncols, A.indptr.copy(), A.indices.copy(), A.data.copy())
    rt = KernelRuntime(num_threads=1)
    Z1 = rt.run(A, X, Y)
    Z2 = rt.run(clone, X, Y)
    assert rt.cache_stats().hits == 1
    assert np.array_equal(Z1, Z2)


def test_plan_cache_keys_include_configuration(small_problem):
    A, X, Y = small_problem
    rt = KernelRuntime(num_threads=1, cache_size=8)
    rt.run(A, X, Y, pattern="sigmoid_embedding")
    rt.run(A, X, Y, pattern="fr_layout")
    rt.run(A, X, Y, pattern="sigmoid_embedding", backend="optimized")
    rt.run(A, X, Y, pattern="sigmoid_embedding", block_size=64)
    assert rt.cache_stats().misses == 4
    assert len(rt.cache_stats().as_dict()) >= 5


def test_plan_cache_lru_eviction():
    rt = KernelRuntime(num_threads=1, cache_size=2)
    mats = [random_csr(40, 40, density=0.1, seed=s) for s in range(3)]
    feats = [random_features(40, 8, seed=s) for s in range(3)]
    for A, X in zip(mats, feats):
        rt.run(A, X)
    stats = rt.cache_stats()
    assert stats.misses == 3
    assert stats.evictions == 1
    assert stats.size == 2
    # mats[0] was evicted (LRU) — running it again is a miss …
    rt.run(mats[0], feats[0])
    assert rt.cache_stats().misses == 4
    # … while mats[2] (recently used) is still cached.
    rt.run(mats[2], feats[2])
    assert rt.cache_stats().hits == 1


def test_plan_cache_lru_order_updates_on_hit():
    rt = KernelRuntime(num_threads=1, cache_size=2)
    mats = [random_csr(40, 40, density=0.1, seed=s) for s in range(3)]
    feats = [random_features(40, 8, seed=s) for s in range(3)]
    rt.run(mats[0], feats[0])
    rt.run(mats[1], feats[1])
    rt.run(mats[0], feats[0])  # refresh 0 → 1 becomes LRU
    rt.run(mats[2], feats[2])  # evicts 1
    rt.run(mats[0], feats[0])
    assert rt.cache_stats().hits == 2
    rt.run(mats[1], feats[1])  # was evicted → miss
    assert rt.cache_stats().misses == 4


def test_clear_cache_resets_entries_not_counters(small_problem):
    A, X, Y = small_problem
    rt = KernelRuntime(num_threads=1)
    rt.run(A, X, Y)
    rt.clear_cache()
    assert rt.cache_stats().size == 0
    rt.run(A, X, Y)
    assert rt.cache_stats().misses == 2


# ---------------------------------------------------------------------- #
# Execution correctness
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("pattern", PATTERNS)
def test_run_bitwise_equals_fusedmm(pattern, small_problem):
    A, X, Y = small_problem
    rt = KernelRuntime(num_threads=1)
    ref = fusedmm(A, X, Y, pattern=pattern, num_threads=1)
    assert np.array_equal(rt.run(A, X, Y, pattern=pattern), ref)
    # Cached second call: still identical.
    assert np.array_equal(rt.run(A, X, Y, pattern=pattern), ref)


@pytest.mark.parametrize("backend", ["generic", "optimized", "specialized", "generated"])
def test_run_honours_backend(backend, small_problem):
    A, X, Y = small_problem
    rt = KernelRuntime(num_threads=1)
    ref = fusedmm(A, X, Y, pattern="sigmoid_embedding", backend=backend, num_threads=1)
    Z = rt.run(A, X, Y, pattern="sigmoid_embedding", backend=backend)
    assert np.allclose(Z, ref, atol=1e-6)


def test_unknown_backend_rejected(small_problem):
    A, X, Y = small_problem
    rt = KernelRuntime(num_threads=1)
    with pytest.raises(BackendError):
        rt.run(A, X, Y, backend="cuda")


def test_plan_reuse_skips_planning(small_problem):
    A, X, Y = small_problem
    rt = KernelRuntime(num_threads=1)
    plan1 = rt.plan(A, pattern="sigmoid_embedding")
    plan2 = rt.plan(A, pattern="sigmoid_embedding")
    assert plan1 is plan2
    assert plan1.describe()["pattern"] == "sigmoid_embedding"


def test_autotuned_plan_cached_once(small_problem):
    A, X, Y = small_problem
    rt = KernelRuntime(num_threads=1, autotune=True, autotune_dim=8)
    p1 = rt.plan(A)
    p2 = rt.plan(A)
    assert p1 is p2
    assert p1.tuning is not None
    assert p1.strategy in ("row", "edge")


# ---------------------------------------------------------------------- #
# Batching
# ---------------------------------------------------------------------- #
def _mixed_requests(pattern="sigmoid_embedding", seed0=0):
    """Small (packable), medium (single) and large (split) requests."""
    reqs, refs = [], []
    # 60-node: packable; 400-node: too big a footprint to pack, too small
    # to split (runs as a single); 700-node: split across partitions.
    shapes = [(60, 0.06, 10)] * 6 + [(400, 0.015, 10)] * 2 + [(700, 0.05, 10)]
    for i, (n, dens, d) in enumerate(shapes):
        A = random_csr(n, n, density=dens, seed=seed0 + i)
        X = random_features(n, d, seed=seed0 + i)
        reqs.append(KernelRequest(A, X, pattern=pattern, tag=i))
        refs.append(fusedmm(A, X, X, pattern=pattern, num_threads=1))
    return reqs, refs


@pytest.mark.parametrize("pattern", PATTERNS)
def test_run_batch_bitwise_equals_sequential(pattern):
    reqs, refs = _mixed_requests(pattern)
    rt = KernelRuntime(num_threads=1, split_nnz=4000)
    outs = rt.run_batch(reqs)
    assert len(outs) == len(refs)
    for out, ref in zip(outs, refs):
        assert np.array_equal(out, ref)


def test_run_batch_uses_all_three_schedules():
    reqs, _ = _mixed_requests()
    rt = KernelRuntime(num_threads=1, split_nnz=4000)
    rt.run_batch(reqs)
    stats = rt.stats()
    assert stats["packed_requests"] >= 2
    assert stats["packed_groups"] >= 1
    assert stats["split_jobs"] >= 1
    assert stats["single_jobs"] >= 1
    assert stats["batches"] == 1
    assert stats["requests"] == len(reqs)


def test_run_batch_thread_count_invariance():
    """Same batch, different pool widths → bitwise identical results
    (scheduling depends on the requests, never on the thread count)."""
    reqs, _ = _mixed_requests()
    baseline = KernelRuntime(num_threads=1, split_nnz=4000).run_batch(reqs)
    for nt in (2, 4):
        rt = KernelRuntime(num_threads=nt, split_nnz=4000)
        outs = rt.run_batch(reqs)
        rt.close()
        for a, b in zip(baseline, outs):
            assert np.array_equal(a, b)


def test_run_batch_mixed_patterns_and_dims():
    rt = KernelRuntime(num_threads=1)
    reqs, refs = [], []
    for i, (pattern, d) in enumerate(
        [("sigmoid_embedding", 8), ("gcn", 8), ("sigmoid_embedding", 16), ("fr_layout", 8)]
    ):
        A = random_csr(50, 50, density=0.08, seed=20 + i)
        X = random_features(50, d, seed=i)
        reqs.append(KernelRequest(A, X, pattern=pattern))
        refs.append(fusedmm(A, X, X, pattern=pattern, num_threads=1))
    outs = rt.run_batch(reqs)
    for out, ref in zip(outs, refs):
        assert np.array_equal(out, ref)


def test_run_batch_accepts_dict_requests(small_problem):
    A, X, Y = small_problem
    rt = KernelRuntime(num_threads=1)
    outs = rt.run_batch([{"A": A, "X": X, "Y": Y, "pattern": "gcn"}])
    assert np.array_equal(outs[0], fusedmm(A, X, Y, pattern="gcn", num_threads=1))


def test_run_batch_empty():
    assert KernelRuntime(num_threads=1).run_batch([]) == []


def test_run_batch_rectangular_rejects_missing_y():
    A = random_csr(20, 35, density=0.1, seed=0)
    X = random_features(20, 4, seed=0)
    with pytest.raises(ShapeError):
        KernelRuntime(num_threads=1).run_batch([KernelRequest(A, X)])


def test_run_batch_rejects_request_without_operands():
    A = random_csr(20, 20, density=0.1, seed=0)
    with pytest.raises(ShapeError):
        KernelRuntime(num_threads=1).run_batch([KernelRequest(A, None)])


def test_run_on_splits_large_derived_matrices_deterministically():
    """run_on uses the nnz-aware split policy (shared pool, no per-call
    executors) and stays bitwise equal across pool widths."""
    A = random_csr(600, 600, density=0.05, seed=9)  # ~18k nnz > split_nnz
    X = random_features(600, 8, seed=9)
    ref = fusedmm(A, X, X, pattern="sigmoid_embedding", num_threads=1)
    outs = []
    for nt in (1, 3):
        rt = KernelRuntime(num_threads=nt, split_nnz=4000)
        stream = rt.epochs(random_csr(50, 50, density=0.1, seed=1),
                           pattern="sigmoid_embedding")
        outs.append(stream.run_on(A, X, X))
        assert rt.stats()["split_jobs"] >= 1
        rt.close()
    assert np.array_equal(outs[0], outs[1])
    assert np.array_equal(outs[0], ref)


def test_pack_requests_block_diagonal_structure():
    reqs = [
        KernelRequest(random_csr(10, 10, density=0.3, seed=s),
                      random_features(10, 4, seed=s)).normalized()
        for s in range(3)
    ]
    packed = pack_requests(reqs)
    assert packed.A.shape == (30, 30)
    assert packed.A.nnz == sum(r.A.nnz for r in reqs)
    assert [p.num_rows for p in packed.parts] == [10, 10, 10]
    # Every edge of request i stays inside request i's column block.
    dense = packed.A.to_dense()
    assert np.allclose(dense[0:10, 10:], 0.0)
    assert np.allclose(dense[10:20, 0:10], 0.0)
    assert np.allclose(dense[10:20, 20:], 0.0)
    assert np.allclose(dense[20:30, 0:20], 0.0)


def test_submit_returns_future_with_correct_result(small_problem):
    A, X, Y = small_problem
    ref = fusedmm(A, X, Y, num_threads=1)
    for nt in (1, 2):
        rt = KernelRuntime(num_threads=nt)
        fut = rt.submit(A, X, Y)
        assert np.array_equal(fut.result(timeout=30), ref)
        rt.close()


# ---------------------------------------------------------------------- #
# Epoch streams
# ---------------------------------------------------------------------- #
def test_epochs_stream_step_and_accounting(small_problem):
    A, X, Y = small_problem
    rt = KernelRuntime(num_threads=1)
    stream = rt.epochs(A, pattern="sigmoid_embedding")
    ref = fusedmm(A, X, Y, pattern="sigmoid_embedding", num_threads=1)
    assert np.array_equal(stream.step(X, Y), ref)
    assert np.array_equal(stream(X, Y), ref)  # __call__ alias
    assert stream.epochs_run == 2
    assert stream.kernel_seconds > 0.0
    info = stream.describe()
    assert info["epochs_run"] == 2
    assert info["pattern"] == "sigmoid_embedding"


def test_epochs_streams_share_cached_plan(small_problem):
    A, X, Y = small_problem
    rt = KernelRuntime(num_threads=1)
    s1 = rt.epochs(A, pattern="gcn")
    s2 = rt.epochs(A, pattern="gcn")
    assert s1.plan is s2.plan
    assert rt.cache_stats().hits == 1


def test_epochs_run_on_minibatch_slices(small_problem):
    """run_on reuses dispatch for derived matrices (the Force2Vec case)."""
    A, X, Y = small_problem
    rt = KernelRuntime(num_threads=1)
    stream = rt.epochs(A, pattern="sigmoid_embedding")
    rows = np.array([3, 7, 11, 20])
    A_batch = A.select_rows(rows)
    Z = stream.run_on(A_batch, X[rows], Y)
    ref = fusedmm(A_batch, X[rows], Y, pattern="sigmoid_embedding", num_threads=1)
    assert np.array_equal(Z, ref)


def test_epochs_run_on_spmm_without_x(small_problem):
    A, _, Y = small_problem
    rt = KernelRuntime(num_threads=1)
    stream = rt.epochs(A, pattern="gcn")
    Z = stream.run_on(A, None, Y)
    assert np.allclose(Z, A.spmm(Y), atol=1e-4)


def test_run_on_non_spmm_requires_x(small_problem):
    A, _, Y = small_problem
    rt = KernelRuntime(num_threads=1)
    stream = rt.epochs(A, pattern="sigmoid_embedding")
    with pytest.raises(BackendError):
        stream.run_on(A, None, Y)


# ---------------------------------------------------------------------- #
# Runtime lifecycle / misc
# ---------------------------------------------------------------------- #
def test_context_manager_closes_pool(small_problem):
    A, X, Y = small_problem
    with KernelRuntime(num_threads=2) as rt:
        rt.run(A, X, Y)
        assert rt.pool is None or rt.stats()["num_threads"] == 2
    assert rt.pool is None  # closed runtimes stay usable sequentially
    rt.run(A, X, Y)


def test_stats_shape(small_problem):
    A, X, Y = small_problem
    rt = KernelRuntime(num_threads=1)
    rt.run(A, X, Y)
    stats = rt.stats()
    for key in ("plan_cache", "requests", "batches", "num_threads"):
        assert key in stats
