"""Unit tests for sparse conversions, Matrix Market I/O and random matrices."""

import numpy as np
import pytest

from repro.errors import ShapeError, SparseFormatError
from repro.sparse import (
    COOMatrix,
    CSRMatrix,
    as_coo,
    as_csr,
    banded_csr,
    block_diagonal_csr,
    from_networkx,
    random_bipartite,
    random_csr,
    read_matrix_market,
    write_matrix_market,
)


# --------------------------------------------------------------------- #
# as_csr / as_coo coercions
# --------------------------------------------------------------------- #
def test_as_csr_passthrough(tiny_csr):
    assert as_csr(tiny_csr) is tiny_csr


def test_as_csr_from_coo():
    coo = COOMatrix(2, 2, np.array([0]), np.array([1]), np.array([2.0]))
    csr = as_csr(coo)
    assert isinstance(csr, CSRMatrix)
    assert csr.to_dense()[0, 1] == pytest.approx(2.0)


def test_as_csr_from_dense():
    dense = np.array([[0.0, 1.0], [2.0, 0.0]])
    csr = as_csr(dense)
    assert np.allclose(csr.to_dense(), dense)


def test_as_csr_from_scipy(small_square_csr):
    scipy_mat = small_square_csr.to_scipy()
    assert as_csr(scipy_mat) == small_square_csr


def test_as_csr_from_edge_list_requires_shape():
    with pytest.raises(SparseFormatError):
        as_csr([(0, 1)])
    csr = as_csr([(0, 1), (1, 2)], shape=(3, 3))
    assert csr.nnz == 2


def test_as_csr_rejects_garbage():
    with pytest.raises(SparseFormatError):
        as_csr(42)


def test_as_coo_from_csr(tiny_csr):
    coo = as_coo(tiny_csr)
    assert isinstance(coo, COOMatrix)
    assert np.allclose(coo.to_dense(), tiny_csr.to_dense())


def test_from_networkx_undirected():
    nx = pytest.importorskip("networkx")
    g = nx.Graph()
    g.add_nodes_from(range(4))
    g.add_edge(0, 1, weight=2.0)
    g.add_edge(2, 3)
    csr = from_networkx(g, weight="weight")
    dense = csr.to_dense()
    assert dense[0, 1] == pytest.approx(2.0)
    assert dense[1, 0] == pytest.approx(2.0)
    assert dense[2, 3] == pytest.approx(1.0)


def test_as_csr_from_networkx_graph():
    nx = pytest.importorskip("networkx")
    g = nx.path_graph(5)
    csr = as_csr(g)
    assert csr.shape == (5, 5)
    assert csr.nnz == 8  # 4 undirected edges stored in both directions


# --------------------------------------------------------------------- #
# Matrix Market I/O
# --------------------------------------------------------------------- #
def test_matrix_market_roundtrip(tmp_path, small_rect_csr):
    path = tmp_path / "mat.mtx"
    write_matrix_market(path, small_rect_csr, comment="test matrix")
    back = read_matrix_market(path)
    assert np.allclose(back.to_dense(), small_rect_csr.to_dense(), atol=1e-5)


def test_matrix_market_roundtrip_gzip(tmp_path, tiny_csr):
    path = tmp_path / "mat.mtx.gz"
    write_matrix_market(path, tiny_csr)
    back = read_matrix_market(path)
    assert np.allclose(back.to_dense(), tiny_csr.to_dense(), atol=1e-5)


def test_matrix_market_coo_output(tmp_path, tiny_csr):
    path = tmp_path / "mat.mtx"
    write_matrix_market(path, tiny_csr)
    coo = read_matrix_market(path, as_format="coo")
    assert isinstance(coo, COOMatrix)


def test_matrix_market_symmetric_expansion(tmp_path):
    path = tmp_path / "sym.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "3 3 2\n"
        "2 1 5.0\n"
        "3 3 7.0\n"
    )
    csr = read_matrix_market(path)
    dense = csr.to_dense()
    assert dense[1, 0] == pytest.approx(5.0)
    assert dense[0, 1] == pytest.approx(5.0)
    assert dense[2, 2] == pytest.approx(7.0)


def test_matrix_market_pattern_field(tmp_path):
    path = tmp_path / "pat.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "% a comment line\n"
        "2 2 2\n"
        "1 2\n"
        "2 1\n"
    )
    csr = read_matrix_market(path)
    assert np.allclose(csr.to_dense(), [[0, 1], [1, 0]])


def test_matrix_market_rejects_dense_array_format(tmp_path):
    path = tmp_path / "bad.mtx"
    path.write_text("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n")
    with pytest.raises(SparseFormatError):
        read_matrix_market(path)


def test_matrix_market_rejects_missing_header(tmp_path):
    path = tmp_path / "bad.mtx"
    path.write_text("3 3 1\n1 1 1.0\n")
    with pytest.raises(SparseFormatError):
        read_matrix_market(path)


def test_matrix_market_unknown_format_arg(tmp_path, tiny_csr):
    path = tmp_path / "m.mtx"
    write_matrix_market(path, tiny_csr)
    with pytest.raises(ValueError):
        read_matrix_market(path, as_format="dense")


def test_write_matrix_market_type_check(tmp_path):
    with pytest.raises(TypeError):
        write_matrix_market(tmp_path / "x.mtx", np.eye(3))


# --------------------------------------------------------------------- #
# Random / structured generators
# --------------------------------------------------------------------- #
def test_random_csr_density_and_determinism():
    A = random_csr(100, 100, density=0.05, seed=1)
    B = random_csr(100, 100, density=0.05, seed=1)
    assert A == B
    assert 0 < A.nnz <= 0.05 * 100 * 100 * 1.1


def test_random_csr_density_bounds():
    with pytest.raises(ShapeError):
        random_csr(10, 10, density=1.5)
    assert random_csr(10, 10, density=0.0).nnz == 0


def test_random_bipartite_shape_and_degree():
    A = random_bipartite(50, 500, avg_degree=4, seed=2)
    assert A.shape == (50, 500)
    assert 1.0 < A.avg_degree() < 8.0


def test_random_bipartite_negative_degree():
    with pytest.raises(ShapeError):
        random_bipartite(5, 5, avg_degree=-1)


def test_banded_csr_degrees():
    A = banded_csr(10, bandwidth=1)
    degs = A.row_degrees()
    assert degs[0] == 1 and degs[-1] == 1
    assert all(d == 2 for d in degs[1:-1])


def test_banded_csr_zero_bandwidth():
    assert banded_csr(5, bandwidth=0).nnz == 0


def test_block_diagonal_structure():
    A = block_diagonal_csr([3, 2])
    dense = A.to_dense()
    assert dense[:3, 3:].sum() == 0
    assert dense[3:, :3].sum() == 0
    assert dense[:3, :3].sum() == 9
