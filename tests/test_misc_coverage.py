"""Additional coverage tests for paths not exercised elsewhere: the scaled
generic-timing path of the harness, dataset seed overrides, codegen edge
cases, and the measured-allocation ordering behind Fig. 10(b)."""

import numpy as np

from repro.baselines import unfused_fusedmm
from repro.bench.harness import GENERIC_TIMING_MAX_NNZ, compare_kernels
from repro.core import compile_kernel, fusedmm_generic, get_pattern, supports_pattern
from repro.core.specialized import fr_layout_kernel
from repro.graphs import load_dataset, random_features, rmat
from repro.perf import measure_peak_allocation
from repro.sparse import random_csr
from _helpers import make_xy


def test_compare_kernels_scales_generic_on_large_graphs():
    """Graphs above the generic-timing cap take the sampled/extrapolated
    path and still report a positive generic time."""
    n = 3000
    A = rmat(n, GENERIC_TIMING_MAX_NNZ, seed=0)
    assert A.nnz > GENERIC_TIMING_MAX_NNZ
    row = compare_kernels("big", A, 8, pattern="gcn", repeats=1)
    assert row["fusedmm_s"] > 0
    assert row["speedup_opt_vs_gen"] > 0


def test_load_dataset_seed_override_changes_graph():
    a = load_dataset("youtube", scale=0.05)
    b = load_dataset("youtube", scale=0.05, seed=999)
    assert a.adjacency != b.adjacency
    # Same registry statistics targets though.
    assert abs(a.adjacency.avg_degree() - b.adjacency.avg_degree()) < 2.0


def test_codegen_edgescale_vop_pattern():
    pattern = get_pattern(None, vop="EDGESCALE", rop="RSUM", sop="TANH", mop="MUL", aop="ASUM")
    resolved = pattern.resolved()
    assert supports_pattern(resolved)
    A = random_csr(40, 40, density=0.1, seed=3, value_range=(0.5, 1.5))
    X, Y = make_xy(A, 6, seed=0)
    kernel = compile_kernel(resolved)
    assert np.allclose(kernel(A, X, Y), fusedmm_generic(A, X, Y, pattern=pattern), atol=1e-3)


def test_codegen_add_rsum_fused_template():
    pattern = get_pattern(None, vop="ADD", rop="RSUM", sop="SCAL", mop="MUL", aop="ASUM")
    resolved = pattern.resolved()
    A = random_csr(30, 30, density=0.12, seed=4)
    X, Y = make_xy(A, 5, seed=1)
    kernel = compile_kernel(resolved)
    assert np.allclose(kernel(A, X, Y), fusedmm_generic(A, X, Y, pattern=pattern), atol=1e-3)


def test_measured_allocation_fused_below_unfused_for_fr():
    """tracemalloc-measured peak allocation: the unfused FR pipeline must
    allocate substantially more than the fused kernel (the measured version
    of Fig. 10b)."""
    g = load_dataset("flickr", scale=0.2)
    A = g.adjacency
    X = random_features(A.nrows, 64, seed=0)
    fused = measure_peak_allocation(fr_layout_kernel, A, X, X)
    unfused = measure_peak_allocation(unfused_fusedmm, A, X, X, pattern="fr_layout")
    assert unfused["peak_mb"] > 1.5 * fused["peak_mb"]


def test_specialized_spmm_multithreaded_matches_single():
    from repro.core import spmm_kernel

    A = random_csr(500, 500, density=0.02, seed=6)
    Y = random_features(500, 16, seed=1)
    assert np.allclose(
        spmm_kernel(A, Y, num_threads=1), spmm_kernel(A, Y, num_threads=4), atol=1e-6
    )


def test_attention_aggregate_thread_invariance():
    from repro.core.extensions import attention_aggregate

    A = random_csr(200, 200, density=0.05, seed=7)
    X = random_features(200, 8, seed=2)
    assert np.allclose(
        attention_aggregate(A, X, num_threads=1),
        attention_aggregate(A, X, num_threads=3),
        atol=1e-5,
    )


def test_run_all_quick_report_sections(tmp_path):
    from repro.experiments.run_all import generate_report

    path = generate_report(tmp_path / "r.md", scale=0.1, quick=True)
    text = path.read_text()
    for heading in ["Table V", "Table VI", "Table VII", "Table VIII", "Fig. 7", "Fig. 10", "Fig. 11", "Section V.D"]:
        assert heading in text
