"""Tests for the JIT backend tier and the shared out=/row_offset= surface.

Without numba installed the jit kernels run interpreted (the ``njit``
shim), so every semantic test here exercises the exact code the compiler
would compile; CI runs the same suite with the ``jit`` extra installed to
cover the compiled tier.
"""

import importlib
import sys

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import BACKENDS, fusedmm
from repro.core.generic import fusedmm_generic
from repro.core.jit import (
    fusedmm_jit,
    get_jit_kernel,
    jit_available,
    jit_supports_pattern,
    warmup,
)
from repro.core.patterns import get_pattern
from repro.errors import BackendError, ShapeError
from repro.runtime import KernelRuntime
from repro.sparse import COOMatrix, CSRMatrix, random_csr
from _helpers import make_xy

settings.register_profile("repro-jit", deadline=None, max_examples=25)
settings.load_profile("repro-jit")

ATOL = 2e-3

JIT_PATTERNS = ["sigmoid_embedding", "fr_layout", "gcn", "spmm", "sddmm_dot"]


@pytest.fixture(scope="module")
def problem():
    A = random_csr(80, 80, density=0.06, seed=21)
    X, Y = make_xy(A, 12, seed=2)
    return A, X, Y


# ---------------------------------------------------------------------- #
# Dispatch-table coverage
# ---------------------------------------------------------------------- #
def test_backends_include_jit():
    assert "jit" in BACKENDS


@pytest.mark.parametrize("pattern", JIT_PATTERNS + ["gnn_mlp"])
def test_builtin_patterns_supported(pattern):
    assert jit_supports_pattern(get_pattern(pattern).resolved())


def test_user_operator_pattern_unsupported(problem):
    from repro.core import make_mlp_vop
    from repro.graphs.features import xavier_init

    A, X, Y = problem
    mlp = make_mlp_vop(xavier_init(24, 12, seed=0))
    resolved = get_pattern("gnn_mlp", vop=mlp).resolved()
    assert not jit_supports_pattern(resolved)
    with pytest.raises(BackendError):
        get_jit_kernel(resolved)
    with pytest.raises(BackendError):
        fusedmm(A, X, Y, pattern="gnn_mlp", vop=mlp, backend="jit")
    # auto still resolves (falls through to optimized/generic)
    Z = fusedmm(A, X, Y, pattern="gnn_mlp", vop=mlp, backend="auto")
    assert Z.shape == X.shape


def test_scal_sop_supported(problem):
    from repro.core import make_scal

    A, X, Y = problem
    scal = make_scal(2.5)
    resolved = get_pattern("sigmoid_embedding", sop=scal).resolved()
    assert jit_supports_pattern(resolved)
    ref = fusedmm_generic(A, X, Y, pattern="sigmoid_embedding", sop=scal)
    Z = fusedmm_jit(A, X, Y, pattern="sigmoid_embedding", sop=scal)
    assert np.allclose(Z, ref, atol=ATOL)


# ---------------------------------------------------------------------- #
# Property test: jit ≡ generic for every registered pattern
# ---------------------------------------------------------------------- #
@st.composite
def problems(draw, max_rows=14, max_cols=14, max_d=6):
    nrows = draw(st.integers(min_value=1, max_value=max_rows))
    ncols = draw(st.integers(min_value=1, max_value=max_cols))
    d = draw(st.integers(min_value=1, max_value=max_d))
    nnz = draw(st.integers(min_value=0, max_value=nrows * ncols))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, nrows, size=nnz)
    cols = rng.integers(0, ncols, size=nnz)
    vals = rng.uniform(0.1, 2.0, size=nnz).astype(np.float32)
    A = CSRMatrix.from_coo(COOMatrix(nrows, ncols, rows, cols, vals))
    X = rng.standard_normal((nrows, d))
    Y = rng.standard_normal((ncols, d))
    return A, X, Y


@given(
    problems(),
    st.sampled_from(JIT_PATTERNS),
    st.sampled_from([np.float32, np.float64]),
    st.booleans(),
    st.data(),
)
def test_jit_matches_generic(problem, pattern, dtype, use_out, data):
    A, X, Y = problem
    X = X.astype(dtype)
    Y = Y.astype(dtype)
    ref = fusedmm_generic(A, X, Y, pattern=pattern)
    if use_out:
        # Any window of the output rows, written at any row offset.
        w0 = data.draw(st.integers(min_value=0, max_value=A.nrows - 1), label="w0")
        w1 = data.draw(st.integers(min_value=w0 + 1, max_value=A.nrows), label="w1")
        out = np.full((w1 - w0, X.shape[1]), np.nan, dtype=dtype)
        result = fusedmm_jit(A, X, Y, pattern=pattern, out=out, row_offset=w0)
        assert result is out
        assert np.allclose(out, ref[w0:w1], atol=ATOL)
    else:
        Z = fusedmm_jit(A, X, Y, pattern=pattern)
        assert Z.dtype == ref.dtype
        assert np.allclose(Z, ref, atol=ATOL)


@given(problems(), st.sampled_from(JIT_PATTERNS))
def test_out_slab_matches_plain_call_for_every_backend(problem, pattern):
    A, X, Y = problem
    for backend in BACKENDS:
        try:
            ref = fusedmm(A, X, Y, pattern=pattern, backend=backend)
        except BackendError:
            continue  # e.g. no specialized kernel for sddmm_dot
        out = np.full_like(ref, np.nan)
        result = fusedmm(A, X, Y, pattern=pattern, backend=backend, out=out)
        assert result is out
        assert np.array_equal(out, ref), backend


# ---------------------------------------------------------------------- #
# out=/row_offset= validation and windowed writes
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", BACKENDS)
def test_windowed_out_writes_only_the_window(problem, backend):
    A, X, Y = problem
    ref = fusedmm(A, X, Y, pattern="sigmoid_embedding", backend=backend)
    out = np.full((30, X.shape[1]), np.nan, dtype=X.dtype)
    fusedmm(
        A, X, Y, pattern="sigmoid_embedding", backend=backend, out=out, row_offset=25
    )
    assert np.array_equal(out, ref[25:55])


def test_out_validation_errors(problem):
    A, X, Y = problem
    with pytest.raises(ShapeError):
        fusedmm(A, X, Y, row_offset=3)  # row_offset without out
    with pytest.raises(ShapeError):
        fusedmm(A, X, Y, out=np.zeros((10, X.shape[1] + 1), dtype=np.float32))
    with pytest.raises(ShapeError):
        # window overruns the result rows
        fusedmm(
            A,
            X,
            Y,
            out=np.zeros((30, X.shape[1]), dtype=np.float32),
            row_offset=A.nrows - 10,
        )


def test_float64_out_is_used_without_scratch(problem):
    A, X, Y = problem
    out = np.zeros((A.nrows, X.shape[1]), dtype=np.float64)
    result = fusedmm(
        A,
        X.astype(np.float64),
        Y.astype(np.float64),
        pattern="gcn",
        backend="optimized",
        out=out,
    )
    assert result is out
    ref = fusedmm(
        A,
        X.astype(np.float64),
        Y.astype(np.float64),
        pattern="gcn",
        backend="optimized",
    )
    assert np.array_equal(out, ref)


# ---------------------------------------------------------------------- #
# Plan/runtime integration
# ---------------------------------------------------------------------- #
def test_plan_kind_jit_and_spmm_without_x(problem):
    A, X, Y = problem
    rt = KernelRuntime(num_threads=1)
    plan = rt.plan(A, pattern="gcn", backend="jit")
    assert plan.kind == "jit"
    assert plan.supports_parts
    ref = fusedmm(A, X, Y, pattern="gcn", backend="jit")
    assert np.array_equal(plan.execute(A, X, Y), ref)
    # X=None takes the spmm path of the jit kernel
    assert np.array_equal(plan.execute(A, None, Y), ref)


def test_plan_execute_out_matches(problem):
    A, X, Y = problem
    rt = KernelRuntime(num_threads=1)
    for backend in ("jit", "optimized", "specialized", "generated"):
        plan = rt.plan(A, pattern="sigmoid_embedding", backend=backend)
        ref = plan.execute(A, X, Y)
        out = np.full_like(ref, np.nan)
        plan.execute(A, X, Y, out=out)
        assert np.array_equal(out, ref), backend


@pytest.mark.parametrize("backend", ["jit", "optimized", "specialized"])
def test_sharded_jit_bitwise_identical(backend):
    A = random_csr(300, 300, density=0.04, seed=9)
    X, _ = make_xy(A, 8, seed=3)
    ref = fusedmm(A, X, X, pattern="sigmoid_embedding", backend=backend)
    for shards in (1, 2):
        rt = KernelRuntime(num_threads=1, processes=shards)
        try:
            Z = rt.run_sharded(A, X, pattern="sigmoid_embedding", backend=backend)
            assert np.array_equal(Z, ref), (backend, shards)
        finally:
            rt.close()


def test_autotune_accepts_jit_strategy(problem):
    from repro.core.autotune import autotune

    A, X, Y = problem
    result = autotune(
        A,
        X,
        Y,
        pattern="sigmoid_embedding",
        strategies=("row", "jit"),
        repeats=1,
        use_cache=False,
    )
    assert ("jit", 0) in result.trials
    assert result.strategy in ("row", "jit")


def test_warmup_without_numba_is_a_noop():
    if jit_available():  # pragma: no cover - exercised in the jit CI leg
        assert warmup() > 0
    else:
        assert warmup() == 0


# ---------------------------------------------------------------------- #
# Fallback behaviour without numba
# ---------------------------------------------------------------------- #
def test_auto_falls_back_when_numba_unavailable(problem, monkeypatch):
    import repro.core.jit as jitmod
    from repro.runtime.plan import _resolve_kind

    A, X, Y = problem
    monkeypatch.setattr(jitmod, "NUMBA_AVAILABLE", False)
    assert jitmod.jit_available() is False
    resolved = get_pattern("sigmoid_embedding").resolved()
    kind, kernel = _resolve_kind(resolved, "auto")
    assert kind == "specialized"
    # auto fusedmm works and matches the reference
    ref = fusedmm_generic(A, X, Y, pattern="sigmoid_embedding")
    assert np.allclose(fusedmm(A, X, Y, backend="auto"), ref, atol=ATOL)
    # explicit jit still computes (interpreted) — the surface never vanishes
    assert np.allclose(fusedmm(A, X, Y, backend="jit"), ref, atol=ATOL)
    # and explicit jit plans still resolve
    kind, kernel = _resolve_kind(resolved, "jit")
    assert kind == "jit"


def test_jit_module_imports_cleanly_without_numba(problem):
    """Reload repro.core.jit with the numba import blocked: the module must
    import, report unavailability, and still compute correct results."""
    import repro.core.jit as jitmod

    A, X, Y = problem
    ref = fusedmm_generic(A, X, Y, pattern="sigmoid_embedding")
    saved = {
        name: sys.modules[name]
        for name in list(sys.modules)
        if name.split(".")[0] == "numba"
    }
    try:
        for name in saved:
            del sys.modules[name]
        sys.modules["numba"] = None  # import numba → ImportError
        importlib.reload(jitmod)
        assert jitmod.jit_available() is False
        assert np.allclose(
            jitmod.fusedmm_jit(A, X, Y, pattern="sigmoid_embedding"), ref, atol=ATOL
        )
    finally:
        del sys.modules["numba"]
        sys.modules.update(saved)
        importlib.reload(jitmod)


# ---------------------------------------------------------------------- #
# App plumbing
# ---------------------------------------------------------------------- #
def test_app_configs_take_kernel_backend():
    from repro.apps import Force2Vec, Force2VecConfig
    from repro.apps.fr_layout import FRLayoutConfig
    from repro.apps.gcn import GCNConfig
    from repro.apps.verse import VerseConfig
    from repro.graphs import load_dataset

    for cls in (Force2VecConfig, FRLayoutConfig, GCNConfig, VerseConfig):
        cfg = cls(kernel_backend="jit")
        assert cfg.kernel_backend == "jit"
        with pytest.raises(BackendError):
            cls(kernel_backend="cuda")

    g = load_dataset("cora", scale=0.05)
    model = Force2Vec(
        g, Force2VecConfig(dim=8, epochs=1, batch_size=64, kernel_backend="jit")
    )
    emb = model.train()
    assert emb.shape == (g.num_vertices, 8)
    assert np.isfinite(emb).all()
