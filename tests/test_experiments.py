"""Smoke and shape tests for the experiment modules (scaled-down runs).

Each experiment is executed at a tiny scale so the suite stays fast; the
assertions check the *structure* of the results (the expected columns and
the qualitative relationships the paper reports), not absolute timings.
"""

import pytest

from repro.experiments import (
    accuracy_f1,
    ablations,
    fig7_roofline,
    fig8_arm,
    fig9_amd,
    fig10_scaling_memory,
    fig11_sensitivity,
    table5_datasets,
    table6_kernels,
    table7_spmm_mkl,
    table8_end2end,
)
from repro.experiments.registry import get_experiment, list_experiments


def test_table5_rows_match_registry():
    results = table5_datasets.run(scale=0.2)
    assert len(results["measured"]) == len(results["paper"]) == 8
    for row in results["measured"]:
        assert row["vertices"] > 0 and row["edges"] > 0
        assert row["avg_degree"] > 0


def test_table6_fast_subset_shape_and_speedups():
    rows = table6_kernels.run(
        graphs=("youtube",), dims=(32,), applications=("embedding", "gcn"),
        scale=0.15, repeats=1, include_generic=False,
    )
    assert len(rows) == 2
    for row in rows:
        assert row["dgl_s"] > 0 and row["fusedmmopt_s"] > 0
        # The fused kernel should not lose to the unfused pipeline.
        assert row["speedup_opt_vs_dgl"] > 0.8


def test_table6_paper_constants_present():
    assert table6_kernels.PAPER_SPEEDUPS[("ogbprot", "fr", 128)] == pytest.approx(34.389)
    assert set(table6_kernels.APPLICATIONS) == {"embedding", "fr", "gcn"}


def test_table7_rows(monkeypatch):
    rows = table7_spmm_mkl.run(graphs=("youtube",), dims=(64,), scale=0.15, repeats=1)
    assert len(rows) == 1
    row = rows[0]
    assert row["fusedmm_spmm_s"] > 0
    if "vendor_spmm_s" in row:
        assert row["fused_over_vendor"] > 0
    assert len(table7_spmm_mkl.PAPER_TABLE7) == 18


def test_table8_end2end_ordering():
    rows = table8_end2end.run(
        graphs=("cora",), backends=("unfused", "fused"), dim=32, epochs=1, scale=1.0
    )
    by_method = {row["method"]: row["seconds_per_epoch"] for row in rows}
    assert len(by_method) == 2
    fused_t = by_method["FusedMM"]
    unfused_t = by_method["DGL (unfused)"]
    assert fused_t > 0 and unfused_t > 0
    # Fused end-to-end training must not be slower than the unfused pipeline.
    assert unfused_t >= 0.8 * fused_t


def test_fig7_roofline_rows():
    rows = fig7_roofline.run(graphs=("youtube",), d=32, scale=0.15, repeats=1)
    assert len(rows) == 1
    row = rows[0]
    assert 0 < row["AI"] < 1.5
    assert row["attained_gflops"] > 0
    assert row["attainable_gflops"] > 0


def test_fig8_arm_rows_have_model_and_host_speedups():
    rows = fig8_arm.run(graphs=("amazon",), applications=("embedding",), d=32, scale=0.1, repeats=1)
    assert len(rows) == 1
    row = rows[0]
    assert row["host_speedup"] > 0
    assert row["model_speedup"] > 1.0  # fused wins in the traffic model
    assert row["paper_speedup"] == pytest.approx(1.4)


def test_fig9_amd_uses_its_own_paper_numbers():
    rows = fig9_amd.run(graphs=("harvard",), applications=("fr",), d=32, scale=0.1, repeats=1)
    assert rows[0]["paper_speedup"] == pytest.approx(11.4)


def test_fig10_scaling_and_memory():
    scaling = fig10_scaling_memory.run_scaling(graph="youtube", d=32, scale=0.1, thread_counts=(1, 2), repeats=1)
    assert scaling["measured"][0]["speedup"] == pytest.approx(1.0)
    assert scaling["modelled"][-1]["speedup"] > 10
    memory = fig10_scaling_memory.run_memory(graph="youtube", dims=(16, 64), scale=0.1)
    assert memory[1]["ratio"] > memory[0]["ratio"]


def test_fig11_degree_sweep_speedup_trend():
    rows = fig11_sensitivity.run_degree_sweep(
        num_vertices=2000, avg_degrees=(4, 32), applications=("sigmoid_embedding",), d=64, repeats=1
    )
    assert len(rows) == 2
    low, high = rows[0], rows[1]
    assert high["realised_avg_degree"] > low["realised_avg_degree"]
    # The paper's trend: the fused advantage grows with density.
    assert high["speedup_opt_vs_dgl"] >= 0.8 * low["speedup_opt_vs_dgl"]


def test_fig11_dimension_sweep_times_grow():
    rows = fig11_sensitivity.run_dimension_sweep(graph="flickr", dims=(32, 128), scale=0.1, repeats=1)
    assert rows[1]["fusedmmopt_s"] > rows[0]["fusedmmopt_s"]
    assert rows[1]["dgl_s"] > rows[0]["dgl_s"]


def test_accuracy_experiment_backend_parity():
    rows = accuracy_f1.run(graphs=("cora",), backends=("fused", "unfused"), dim=16, epochs=3, scale=1.0)
    assert len(rows) == 2
    by_backend = {r["backend"]: r for r in rows}
    assert abs(by_backend["fused"]["f1_micro"] - by_backend["unfused"]["f1_micro"]) < 0.08
    assert by_backend["fused"]["paper_f1_micro"] == pytest.approx(0.78)


def test_ablation_runners_shapes():
    ladder = ablations.run_backend_ladder(graph="youtube", d=32, scale=0.1, repeats=1)
    assert any(r["backend"].startswith("generic") for r in ladder)
    assert all(r["seconds"] > 0 for r in ladder)

    blocks = ablations.run_block_size_sweep(graph="youtube", d=32, scale=0.1, block_sizes=(256, 4096), repeats=1)
    assert {r["block_size"] for r in blocks} == {256, 4096}

    crossover = ablations.run_strategy_crossover(num_vertices=1000, avg_degrees=(2, 32), d=16, repeats=1)
    assert len(crossover) == 2

    balance = ablations.run_partition_balance(graph="youtube", num_parts=4, scale=0.1)
    schemes = {r["scheme"] for r in balance}
    assert len(schemes) == 2
    nnz_balanced = [r for r in balance if "part1d" in r["scheme"]][0]
    naive = [r for r in balance if "naive" in r["scheme"]][0]
    assert nnz_balanced["balance_factor"] <= naive["balance_factor"] + 1e-6


def test_registry_covers_all_experiments():
    keys = list_experiments()
    for expected in ["table5", "table6", "table7", "table8", "fig7", "fig8", "fig9", "fig10", "fig11", "accuracy", "ablations"]:
        assert expected in keys
    exp = get_experiment("table5")
    assert exp.paper_reference == "Table V"
    results = exp.run_all(scale=0.2)
    assert "datasets" in results
    with pytest.raises(KeyError):
        get_experiment("table99")
