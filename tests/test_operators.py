"""Unit tests for the five-step operator registry (Table II)."""

import numpy as np
import pytest

from repro.core.operators import (
    NOOP,
    OpKind,
    Operator,
    get_op,
    list_ops,
    make_mlp_vop,
    make_scal,
    register_op,
)
from repro.errors import OperatorError


def test_registry_contains_table2_ops():
    for name in ["ADD", "MUL", "SEL2ND", "SIGMOID", "SCAL", "RSUM", "RMUL", "ASUM", "AMAX"]:
        assert get_op(name).name == name


def test_get_op_case_insensitive():
    assert get_op("mul") is get_op("MUL")


def test_get_op_passthrough_instance():
    op = get_op("ADD")
    assert get_op(op) is op


def test_get_op_unknown_raises():
    with pytest.raises(OperatorError):
        get_op("NOT_AN_OP")


def test_get_op_bad_type_raises():
    with pytest.raises(OperatorError):
        get_op(123)


def test_list_ops_filter_by_kind():
    rops = list_ops(OpKind.ROP)
    assert "RSUM" in rops and "NORM" in rops
    assert "ASUM" not in rops
    assert len(list_ops()) >= len(rops)


def test_register_duplicate_rejected():
    op = Operator(name="MUL", kinds=(OpKind.VOP,), edge_fn=lambda *a: None, batch_fn=lambda *a: None)
    with pytest.raises(OperatorError):
        register_op(op)


def test_register_overwrite_allowed():
    custom = Operator(
        name="TEST_CUSTOM_OP", kinds=(OpKind.VOP,), edge_fn=lambda x, y, a=None, w=None: x, batch_fn=lambda x, y, a=None, w=None: x
    )
    register_op(custom)
    register_op(custom, overwrite=True)
    assert get_op("TEST_CUSTOM_OP") is custom


def test_noop_identity():
    assert NOOP.is_noop
    x = np.arange(3.0)
    assert NOOP.edge_fn(x) is x


# ------------------------------------------------------------------ #
# Semantics of individual standard operators
# ------------------------------------------------------------------ #
def test_add_sub_mul_edge_semantics():
    x = np.array([1.0, 2.0])
    y = np.array([3.0, 5.0])
    assert np.allclose(get_op("ADD").edge_fn(x, y), [4.0, 7.0])
    assert np.allclose(get_op("SUB").edge_fn(x, y), [-2.0, -3.0])
    assert np.allclose(get_op("MUL").edge_fn(x, y), [3.0, 10.0])


def test_sel_ops():
    x = np.array([1.0, 2.0])
    y = np.array([3.0, 5.0])
    assert np.allclose(get_op("SEL2ND").edge_fn(x, y), y)
    assert np.allclose(get_op("SEL1ST").edge_fn(x, y), x)


def test_edgescale_uses_edge_value():
    x = np.array([1.0, 2.0])
    y = np.array([3.0, 5.0])
    out = get_op("EDGESCALE").edge_fn(x, y, 2.0)
    assert np.allclose(out, [2.0, 4.0])


def test_edgescale_batch_scalar_message():
    h = np.array([1.0, 2.0])  # per-edge scalar messages
    y = np.ones((2, 3))
    a = np.array([10.0, 100.0])
    out = get_op("EDGESCALE").batch_fn(h, y, a)
    # message h is "smaller-dim" so EDGESCALE scales y by a by convention
    assert out.shape == (2, 3)


def test_muldiff_uses_vop_output():
    h = 2.0
    y = np.array([1.0, 1.0])
    w = np.array([3.0, 4.0])
    assert np.allclose(get_op("MULDIFF").edge_fn(h, y, None, w), [6.0, 8.0])


def test_sigmoid_range_and_stability():
    sig = get_op("SIGMOID")
    vals = sig.edge_fn(np.array([-1000.0, 0.0, 1000.0]))
    assert np.all(vals >= 0.0) and np.all(vals <= 1.0)
    assert vals[1] == pytest.approx(0.5)


def test_relu_tanh_exp():
    x = np.array([-1.0, 0.5])
    assert np.allclose(get_op("RELU").edge_fn(x), [0.0, 0.5])
    assert np.allclose(get_op("TANH").edge_fn(x), np.tanh(x))
    assert np.allclose(get_op("EXP").edge_fn(x), np.exp(x))


def test_tdist_kernel():
    assert get_op("TDIST").edge_fn(0.0) == pytest.approx(1.0)
    assert get_op("TDIST").edge_fn(1.0) == pytest.approx(0.5)


def test_reductions():
    w = np.array([1.0, 2.0, 3.0])
    assert get_op("RSUM").edge_fn(w) == pytest.approx(6.0)
    assert get_op("RMUL").edge_fn(w) == pytest.approx(6.0)
    assert get_op("RMAX").edge_fn(w) == pytest.approx(3.0)
    assert get_op("NORM").edge_fn(w) == pytest.approx(np.sqrt(14.0))


def test_reductions_batched_axis():
    W = np.arange(6.0).reshape(2, 3)
    assert np.allclose(get_op("RSUM").batch_fn(W), W.sum(axis=1))
    assert np.allclose(get_op("NORM").batch_fn(W), np.linalg.norm(W, axis=1))


def test_accumulators_edge_and_batch():
    z = np.zeros(3)
    w = np.array([1.0, -2.0, 3.0])
    assert np.allclose(get_op("ASUM").edge_fn(z, w), w)
    assert np.allclose(get_op("AMAX").edge_fn(z, w), [1.0, 0.0, 3.0])
    assert np.allclose(get_op("AMIN").edge_fn(z, w), [0.0, -2.0, 0.0])
    block = np.array([[1.0, 5.0], [3.0, 2.0]])
    assert np.allclose(get_op("ASUM").batch_fn(np.zeros(2), block), [4.0, 7.0])
    assert np.allclose(get_op("AMAX").batch_fn(np.full(2, -np.inf), block), [3.0, 5.0])
    assert np.allclose(get_op("AMIN").batch_fn(np.full(2, np.inf), block), [1.0, 2.0])


def test_accumulator_metadata():
    assert get_op("ASUM").accumulator_identity == 0.0
    assert get_op("AMAX").accumulator_identity == -np.inf
    assert get_op("ASUM").accumulate_ufunc is np.add
    assert get_op("AMAX").accumulate_ufunc is np.maximum


def test_make_scal():
    op = make_scal(2.5)
    assert op.edge_fn(np.array([2.0])) == pytest.approx(5.0)
    assert op.params["alpha"] == 2.5


def test_make_scal_registered():
    op = make_scal(0.1, name="TEST_SCAL_01", register=True)
    assert get_op("TEST_SCAL_01") is op


def test_make_mlp_vop_shapes():
    rng = np.random.default_rng(0)
    W1 = rng.standard_normal((8, 6)).astype(np.float32)
    W2 = rng.standard_normal((6, 4)).astype(np.float32)
    op = make_mlp_vop(W1, W2)
    x = rng.standard_normal(4).astype(np.float32)
    y = rng.standard_normal(4).astype(np.float32)
    out = op.edge_fn(x, y)
    assert out.shape == (4,)
    Yb = rng.standard_normal((5, 4)).astype(np.float32)
    out_b = op.batch_fn(x, Yb)
    assert out_b.shape == (5, 4)


def test_make_mlp_vop_single_layer():
    rng = np.random.default_rng(1)
    W1 = rng.standard_normal((8, 4)).astype(np.float32)
    op = make_mlp_vop(W1)
    out = op.edge_fn(np.ones(4, dtype=np.float32), np.ones(4, dtype=np.float32))
    assert out.shape == (4,)
    assert np.all(out >= 0.0)  # ReLU output


def test_operator_allowed_in():
    assert get_op("RSUM").allowed_in(OpKind.ROP)
    assert not get_op("RSUM").allowed_in(OpKind.VOP)
