"""Unit tests for the resilience layer (:mod:`repro.resilience`).

The module is pure stdlib and deliberately socket-free, so everything
here is deterministic: retry jitter is a pure function of (seed, salt,
attempt), the circuit breaker runs on an injectable clock, and fault
plans round-trip through their string spec.
"""

import threading

import pytest

from repro.resilience import (
    FAULT_KINDS,
    Fault,
    FaultInjector,
    FaultPlan,
    HealthTracker,
    RetryPolicy,
    retry_call,
    seed_from_name,
)


class FakeClock:
    """A manually-advanced monotonic clock."""

    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ---------------------------------------------------------------------- #
# RetryPolicy / RetryState
# ---------------------------------------------------------------------- #
def test_seed_from_name_is_stable_and_distinct():
    assert seed_from_name("w0") == seed_from_name("w0")
    assert seed_from_name("w0") != seed_from_name("w1")
    assert 0 <= seed_from_name("anything") < 2**32


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=-1)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.0)
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=-1)


def test_backoff_grows_exponentially_and_caps():
    policy = RetryPolicy(base_delay=0.5, max_delay=4.0, multiplier=2.0)
    assert [policy.backoff(i) for i in range(5)] == [0.5, 1.0, 2.0, 4.0, 4.0]


def test_seeded_jitter_is_deterministic_and_bounded():
    policy = RetryPolicy(base_delay=1.0, max_delay=8.0, jitter=0.5, seed=42)
    for attempt in range(6):
        d1 = policy.delay(attempt, salt=3)
        d2 = policy.delay(attempt, salt=3)
        assert d1 == d2  # pure function of (seed, salt, attempt)
        base = policy.backoff(attempt)
        assert 0.5 * base <= d1 <= 1.5 * base
    # Salt de-correlates consumers sharing one policy object.
    assert policy.delay(2, salt=0) != policy.delay(2, salt=1)


def test_zero_jitter_equals_backoff():
    policy = RetryPolicy(base_delay=0.25, jitter=0.0, seed=1)
    assert policy.delay(3) == policy.backoff(3)


def test_retry_state_attempt_budget():
    policy = RetryPolicy(base_delay=0.0, jitter=0.0, max_attempts=2)
    state = policy.start()
    assert state.next_delay() == 0.0
    assert state.next_delay() == 0.0
    assert state.next_delay() is None  # budget spent
    assert state.attempts == 2


def test_retry_state_deadline_budget_truncates_then_stops():
    clock = FakeClock()
    policy = RetryPolicy(
        base_delay=4.0, jitter=0.0, multiplier=1.0, deadline_s=6.0
    )
    state = policy.start(clock=clock)
    assert state.next_delay() == 4.0
    clock.advance(4.0)
    # 2s of budget left: the 4s backoff is truncated, not overshot.
    assert state.next_delay() == pytest.approx(2.0)
    clock.advance(2.0)
    assert state.next_delay() is None


def test_retry_state_sleep_interruptible():
    policy = RetryPolicy(base_delay=30.0, jitter=0.0)
    state = policy.start()
    stop = threading.Event()
    stop.set()
    assert state.sleep(interrupt=stop) is False  # returned without waiting


def test_retry_call_recovers_then_exhausts():
    calls = {"n": 0}
    observed = []

    def flaky():
        calls["n"] += 1
        if calls["n"] < 3:
            raise ConnectionError("not yet")
        return "ok"

    policy = RetryPolicy(base_delay=0.0, jitter=0.0, max_attempts=5)
    result = retry_call(
        flaky,
        policy=policy,
        on_retry=lambda exc, attempt, delay: observed.append(attempt),
    )
    assert result == "ok"
    assert calls["n"] == 3
    assert observed == [1, 2]

    always = RetryPolicy(base_delay=0.0, jitter=0.0, max_attempts=2)
    with pytest.raises(ConnectionError):
        retry_call(lambda: (_ for _ in ()).throw(ConnectionError()), policy=always)


def test_retry_call_does_not_catch_unlisted_exceptions():
    policy = RetryPolicy(base_delay=0.0, jitter=0.0, max_attempts=5)

    def boom():
        raise ValueError("logic bug")

    with pytest.raises(ValueError):
        retry_call(boom, policy=policy)


# ---------------------------------------------------------------------- #
# HealthTracker circuit breaker
# ---------------------------------------------------------------------- #
def _tracker(clock, **kwargs):
    kwargs.setdefault("failure_threshold", 3)
    kwargs.setdefault("failure_window_s", 30.0)
    kwargs.setdefault("quarantine_s", 5.0)
    return HealthTracker(clock=clock, **kwargs)


def test_health_quarantines_after_threshold_failures():
    clock = FakeClock()
    health = _tracker(clock)
    assert health.allow("w") is True
    assert health.record_failure("w") is False
    assert health.record_failure("w") is False
    assert health.record_failure("w") is True  # third strike
    assert health.state("w") == "quarantined"
    assert health.allow("w") is False
    assert health.stats() == {
        "quarantined_hosts": 1,
        "quarantined_now": 1,
        "probes": 0,
    }


def test_health_failures_outside_window_do_not_count():
    clock = FakeClock()
    health = _tracker(clock, failure_window_s=10.0)
    health.record_failure("w")
    clock.advance(11.0)  # first failure ages out of the window
    health.record_failure("w")
    assert health.record_failure("w") is False
    assert health.state("w") == "closed"


def test_health_probe_readmits_on_success():
    clock = FakeClock()
    health = _tracker(clock)
    for _ in range(3):
        health.record_failure("w")
    clock.advance(5.1)  # quarantine period elapses
    assert health.allow("w") is True  # the single probe admission
    assert health.state("w") == "probing"
    assert health.allow("w") is False  # no thundering herd
    health.record_success("w")
    assert health.state("w") == "closed"
    assert health.allow("w") is True
    assert health.stats()["probes"] == 1


def test_health_probe_failure_requarantines():
    clock = FakeClock()
    health = _tracker(clock)
    for _ in range(3):
        health.record_failure("w")
    clock.advance(5.1)
    assert health.allow("w") is True
    assert health.record_failure("w") is True  # probe failed
    assert health.state("w") == "quarantined"
    assert health.allow("w") is False  # fresh quarantine period
    assert health.stats()["quarantined_hosts"] == 2


def test_health_keys_are_independent():
    clock = FakeClock()
    health = _tracker(clock)
    for _ in range(3):
        health.record_failure("flapper")
    assert health.allow("flapper") is False
    assert health.allow("steady") is True
    assert health.state("steady") == "closed"


# ---------------------------------------------------------------------- #
# Fault / FaultPlan / FaultInjector
# ---------------------------------------------------------------------- #
def test_fault_validation():
    with pytest.raises(ValueError):
        Fault(kind="meteor", step=1)
    with pytest.raises(ValueError):
        Fault(kind="crash", step=0)


def test_fault_plan_spec_roundtrip():
    spec = "delay@2:0.5,drop_frame@4,crash@7+"
    plan = FaultPlan.from_spec(spec)
    assert len(plan) == 3
    assert plan.at(2) == Fault("delay", 2, arg=0.5)
    assert plan.at(4) == Fault("drop_frame", 4)
    assert plan.at(3) is None
    assert FaultPlan.from_spec(plan.to_spec()) == plan
    assert FaultPlan.from_spec(None) == FaultPlan()
    assert not FaultPlan.from_spec("")


def test_fault_plan_bad_spec_raises():
    with pytest.raises(ValueError):
        FaultPlan.from_spec("delay@notanumber")
    with pytest.raises(ValueError):
        FaultPlan.from_spec("meteor@3")


def test_crash_after_is_sticky():
    plan = FaultPlan.crash_after(3)
    assert plan.at(1) is None
    assert plan.at(2) is None
    for step in (3, 4, 100):
        fault = plan.at(step)
        assert fault is not None and fault.kind == "crash" and fault.sticky


def test_exact_fault_beats_sticky():
    plan = FaultPlan.from_spec("crash@2+,delay@5:0.1")
    assert plan.at(4).kind == "crash"
    assert plan.at(5).kind == "delay"  # exact schedule wins at its step
    assert plan.at(6).kind == "crash"


def test_seeded_plan_is_deterministic():
    a = FaultPlan.seeded(11, steps=50, rate=0.3)
    b = FaultPlan.seeded(11, steps=50, rate=0.3)
    c = FaultPlan.seeded(12, steps=50, rate=0.3)
    assert a == b
    assert a != c
    assert a  # rate 0.3 over 50 steps: virtually certain to be non-empty
    for fault in a.faults:
        assert fault.kind in FAULT_KINDS
        assert not fault.sticky  # seeded soaks flap, they don't die forever
        if fault.kind == "delay":
            assert 0.05 <= fault.arg <= 0.5


def test_seeded_plan_respects_kind_filter():
    plan = FaultPlan.seeded(3, steps=80, rate=0.5, kinds=("delay",))
    assert plan.kinds_scheduled() == ("delay",)


def test_fault_injector_steps_and_coverage():
    fired_log = []
    plan = FaultPlan.from_spec("delay@2:0.1,crash@4+")
    injector = FaultInjector(plan, log=lambda f, s: fired_log.append((f.kind, s)))
    assert injector.step() is None  # step 1
    assert injector.step().kind == "delay"  # step 2
    assert injector.step() is None  # step 3
    assert injector.step().kind == "crash"  # step 4
    assert injector.step().kind == "crash"  # step 5: sticky keeps firing
    assert injector.steps == 5
    assert injector.kinds_fired() == ("crash", "delay")
    assert fired_log == [("delay", 2), ("crash", 4), ("crash", 5)]
    assert bool(injector)
    assert not FaultInjector(FaultPlan())
