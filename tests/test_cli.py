"""Unit tests for the command-line interface and the report generator."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_cli_patterns(capsys):
    assert main(["patterns"]) == 0
    out = capsys.readouterr().out
    assert "sigmoid_embedding" in out
    assert "SIGMOID" in out


def test_cli_experiments(capsys):
    assert main(["experiments"]) == 0
    out = capsys.readouterr().out
    assert "table6" in out and "fig11" in out


def test_cli_datasets(capsys):
    assert main(["datasets", "--scale", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "cora" in out and "orkut" in out


def test_cli_kernel(capsys):
    assert main(
        [
            "kernel",
            "--graph",
            "cora",
            "--dims",
            "16",
            "--scale",
            "0.3",
            "--repeats",
            "1",
            "--no-generic",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "speedup_opt_vs_dgl" in out


def test_cli_run_table5(capsys):
    assert main(["run", "table5"]) == 0
    out = capsys.readouterr().out
    assert "Table V" in out


def test_cli_runtime_stats(capsys):
    assert main(
        [
            "runtime",
            "stats",
            "--nodes",
            "400",
            "--epochs",
            "3",
            "--dim",
            "8",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "plan_cache" in out
    assert "hit_rate" in out
    assert "split_jobs" in out


def test_cli_bench_reorder(tmp_path, capsys):
    json_path = tmp_path / "BENCH_reorder.json"
    assert main(
        [
            "bench",
            "reorder",
            "--nodes",
            "600",
            "--dim",
            "8",
            "--repeats",
            "1",
            "--strategies",
            "none",
            "degree",
            "--json",
            str(json_path),
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "Locality tier" in out
    assert "speedup_vs_none" in out
    assert json_path.exists()


def test_cli_report_quick(tmp_path, capsys):
    output = tmp_path / "report.md"
    assert main(["report", "--output", str(output), "--quick", "--scale", "0.1"]) == 0
    text = output.read_text()
    assert "# FusedMM reproduction" in text
    assert "Table VI" in text
    assert "Fig. 11" in text
