"""Tests for the shared scalar math helpers (clipped sigmoid)."""

import numpy as np

from repro.core.mathops import SIGMOID_CLAMP, sigmoid, sigmoid_scalar


def test_sigmoid_matches_closed_form_in_stable_range():
    x = np.linspace(-20.0, 20.0, 401)
    expected = 1.0 / (1.0 + np.exp(-x))
    assert np.allclose(sigmoid(x), expected, rtol=1e-12, atol=1e-15)


def test_sigmoid_saturates_without_overflow():
    x = np.array([-1e6, -SIGMOID_CLAMP - 1, SIGMOID_CLAMP + 1, 1e6])
    with np.errstate(over="raise"):
        result = sigmoid(x)
    assert np.all(np.isfinite(result))
    assert result[0] >= 0.0 and result[0] < 1e-20
    assert result[-1] <= 1.0 and result[-1] >= 1.0 - 1e-15


def test_sigmoid_scalar_matches_array_form():
    xs = np.concatenate(
        [
            np.linspace(-80.0, 80.0, 257),
            np.array([0.0, -0.0, SIGMOID_CLAMP, -SIGMOID_CLAMP]),
        ]
    )
    array_vals = sigmoid(xs)
    scalar_vals = np.array([sigmoid_scalar(float(x)) for x in xs])
    assert np.allclose(array_vals, scalar_vals, rtol=1e-14, atol=1e-300)


def test_sigmoid_is_the_single_definition_used_by_the_backends():
    """The registry SIGMOID, the specialized kernel and the codegen
    templates all resolve to the one shared implementation — the clamp
    bounds cannot drift between backends."""
    import repro.core.specialized as specialized
    from repro.core.codegen import compile_kernel
    from repro.core.operators import get_op

    x = np.array([-70.0, -1.0, 0.0, 1.0, 70.0])
    assert np.allclose(get_op("SIGMOID").batch_fn(x), sigmoid(x))
    assert specialized._sigmoid is sigmoid
    kernel = compile_kernel(
        __import__("repro.core.patterns", fromlist=["get_pattern"])
        .get_pattern("sigmoid_embedding")
        .resolved()
    )
    assert "sigmoid(" in kernel.source
