"""Unit tests for the performance substrate (timer, flops, memory, roofline,
machine model, scaling)."""

import time

import pytest

from repro.core import sigmoid_embedding_kernel
from repro.graphs import random_features
from repro.perf import (
    MACHINES,
    Stopwatch,
    Timing,
    arithmetic_intensity,
    arithmetic_intensity_formula,
    attainable_gflops,
    calibrate_efficiency,
    fusedmm_flops,
    fusedmm_memory_bytes,
    measure_peak_allocation,
    measure_stream_bandwidth,
    memory_model_sweep,
    modeled_scaling_curve,
    pattern_flops,
    predict_kernel_time,
    roofline_point,
    stopwatch,
    strong_scaling,
    time_kernel,
    traffic_bytes,
)
from repro.sparse import random_csr


@pytest.fixture(scope="module")
def A():
    return random_csr(300, 300, density=0.05, seed=17)


# ------------------------------------------------------------------ #
# Timing
# ------------------------------------------------------------------ #
def test_time_kernel_statistics():
    timing = time_kernel(lambda: time.sleep(0.001), repeats=3, warmup=1)
    assert isinstance(timing, Timing)
    assert timing.mean >= 0.001
    assert timing.best <= timing.mean
    assert timing.total >= 3 * 0.001
    assert timing.as_dict()["repeats"] == 3


def test_stopwatch_laps():
    sw = Stopwatch()
    with sw.lap("a"):
        time.sleep(0.001)
    with sw.lap("a"):
        pass
    with sw.lap("b"):
        pass
    assert sw.laps["a"] >= 0.001
    assert sw.total() >= sw.laps["a"]
    sw.reset()
    assert sw.laps == {}


def test_stopwatch_contextmanager():
    with stopwatch() as t:
        time.sleep(0.001)
    assert t.elapsed >= 0.001


# ------------------------------------------------------------------ #
# Flop / traffic / AI models
# ------------------------------------------------------------------ #
def test_pattern_flops_scales_linearly():
    assert pattern_flops("sigmoid_embedding", 64, 1000) * 2 == pattern_flops(
        "sigmoid_embedding", 64, 2000
    )
    assert pattern_flops("sigmoid_embedding", 128, 1000) > pattern_flops(
        "sigmoid_embedding", 64, 1000
    )


def test_fusedmm_flops_wrapper(A):
    assert fusedmm_flops(A, 32) == pattern_flops("sigmoid_embedding", 32, A.nnz)


def test_arithmetic_intensity_formula_limits():
    # Worst case delta = d = 1 gives 1/6 (paper's statement).
    assert arithmetic_intensity_formula(1, 1) == pytest.approx(1.0 / 6.0)
    # Dense graphs with large d approach 1.
    assert arithmetic_intensity_formula(1000, 1000) > 0.99
    assert arithmetic_intensity_formula(0, 10) == 0.0


def test_arithmetic_intensity_monotone_in_degree():
    ai_sparse = arithmetic_intensity_formula(2, 128)
    ai_dense = arithmetic_intensity_formula(100, 128)
    assert ai_dense > ai_sparse


def test_arithmetic_intensity_exact_close_to_formula(A):
    d = 128
    exact = arithmetic_intensity(A, d)
    approx = arithmetic_intensity_formula(A.avg_degree(), d)
    assert exact == pytest.approx(approx, rel=0.5)


def test_traffic_bytes_fused_less_than_unfused(A):
    for d in (16, 128):
        assert traffic_bytes(A, d, fused=True) < traffic_bytes(A, d, fused=False)
    # Vector messages cost much more than scalar ones in the unfused model.
    assert traffic_bytes(A, 64, fused=False, scalar_messages=False) > traffic_bytes(
        A, 64, fused=False, scalar_messages=True
    )


def test_attainable_gflops_roofline():
    assert attainable_gflops(0.5, 100.0) == pytest.approx(50.0)
    assert attainable_gflops(10.0, 100.0, peak_gflops=200.0) == pytest.approx(200.0)


def test_measure_stream_bandwidth_positive():
    assert measure_stream_bandwidth(size_mb=4, repeats=1) > 0.1


def test_roofline_point(A):
    point = roofline_point("test", A, 64, kernel_seconds=0.01, bandwidth_gbs=50.0)
    row = point.as_row()
    assert row["graph"] == "test"
    assert row["attained_gflops"] > 0
    assert row["attainable_gflops"] <= 50.0 * 1.5


# ------------------------------------------------------------------ #
# Memory models
# ------------------------------------------------------------------ #
def test_fusedmm_memory_formula(A):
    est = fusedmm_memory_bytes(A, 64)
    expected_operands = 8 * A.nrows * 64 + 4 * A.ncols * 64 + 12 * A.nnz
    assert est.operands_bytes == expected_operands
    assert est.total_megabytes == pytest.approx(est.total_bytes / 2**20)


def test_memory_model_sweep_ratio_grows(A):
    sweep = memory_model_sweep(A, [16, 64, 256], pattern="fr_layout")
    ratios = [sweep[d]["unfused_mb"] / sweep[d]["fusedmm_mb"] for d in (16, 64, 256)]
    assert ratios == sorted(ratios)
    assert ratios[-1] > ratios[0]


def test_measure_peak_allocation_tracks_result(A):
    X = random_features(A.nrows, 32, seed=0)
    stats = measure_peak_allocation(sigmoid_embedding_kernel, A, X, X)
    assert stats["peak_mb"] > 0
    assert "result_mb" in stats


# ------------------------------------------------------------------ #
# Machine model
# ------------------------------------------------------------------ #
def test_machine_profiles_match_table4():
    intel = MACHINES["intel_skylake_8160"]
    amd = MACHINES["amd_epyc_7551"]
    arm = MACHINES["arm_thunderx_cn8890"]
    assert intel.total_cores == 48
    assert amd.total_cores == 64
    assert arm.total_cores == 48
    assert intel.llc_mb == 32 and amd.llc_mb == 8 and arm.llc_mb == 16
    assert arm.l2_kb == 0  # the paper notes no L2 on the ARM server
    assert intel.peak_gflops > 0


def test_predict_kernel_time_orderings(A):
    d = 128
    t_fused = predict_kernel_time(A, d, "intel_skylake_8160", fused=True)
    t_unfused = predict_kernel_time(A, d, "intel_skylake_8160", fused=False)
    assert t_unfused > t_fused
    # The ARM server has much lower bandwidth -> slower predicted times.
    t_arm = predict_kernel_time(A, d, "arm_thunderx_cn8890", fused=True)
    assert t_arm > t_fused


def test_predict_kernel_time_accepts_profile_instance(A):
    profile = MACHINES["amd_epyc_7551"]
    assert predict_kernel_time(A, 64, profile) > 0


def test_calibrate_efficiency_roundtrip(A):
    d = 64
    measured = 0.02
    eff = calibrate_efficiency(measured, A, d, "intel_skylake_8160")
    predicted = predict_kernel_time(A, d, "intel_skylake_8160", efficiency=eff)
    assert predicted == pytest.approx(measured, rel=1e-6)
    assert calibrate_efficiency(0.0, A, d, "intel_skylake_8160") == 1.0


# ------------------------------------------------------------------ #
# Scaling
# ------------------------------------------------------------------ #
def test_strong_scaling_measures_each_thread_count(A):
    X = random_features(A.nrows, 16, seed=0)

    def kernel(num_threads: int = 1):
        return sigmoid_embedding_kernel(A, X, X, num_threads=num_threads)

    points = strong_scaling(kernel, [1, 2], repeats=1, warmup=0)
    assert [p.threads for p in points] == [1, 2]
    assert points[0].speedup == pytest.approx(1.0)
    assert all(p.seconds > 0 for p in points)


def test_modeled_scaling_curve_shape():
    points = modeled_scaling_curve(10.0, [1, 8, 16, 32])
    speedups = [p.speedup for p in points]
    assert speedups[0] == pytest.approx(1.0, rel=0.05)
    assert speedups == sorted(speedups)
    # Matches the paper's ballpark: ~20x at 32 threads.
    assert 14.0 < speedups[-1] < 28.0
    assert points[-1].as_row()["threads"] == 32
