"""Unit tests for the extension kernels (attention, edge softmax,
GraphSAGE-mean aggregation)."""

import numpy as np
import pytest

from repro.core.extensions import (
    attention_aggregate,
    attention_scores,
    edge_softmax,
    sage_mean_aggregate,
)
from repro.errors import ShapeError
from repro.sparse import CSRMatrix, random_csr
from _helpers import make_xy


@pytest.fixture(scope="module")
def problem():
    A = random_csr(60, 60, density=0.08, seed=42)
    X, Y = make_xy(A, 12, seed=3)
    return A, X, Y


def test_attention_scores_shape_and_leaky_relu(problem):
    A, X, Y = problem
    scores = attention_scores(A, X, Y)
    assert scores.shape == (A.nnz,)
    # Leaky ReLU: negative scores are shrunk, not clipped.
    raw_rows = np.repeat(np.arange(A.nrows), A.row_degrees())
    raw = np.einsum("ij,ij->i", X[raw_rows], Y[A.indices]) / np.sqrt(X.shape[1])
    neg = raw < 0
    assert np.allclose(scores[neg], 0.2 * raw[neg], atol=1e-5)
    assert np.allclose(scores[~neg], raw[~neg], atol=1e-5)


def test_attention_scores_validation(problem):
    A, X, Y = problem
    with pytest.raises(ShapeError):
        attention_scores(A, X[:-1], Y)
    with pytest.raises(ShapeError):
        attention_scores(A, X, Y[:, :-1])


def test_edge_softmax_rows_sum_to_one(problem):
    A, X, Y = problem
    alpha = edge_softmax(A, attention_scores(A, X, Y))
    rows = np.repeat(np.arange(A.nrows), A.row_degrees())
    sums = np.zeros(A.nrows)
    np.add.at(sums, rows, alpha)
    non_empty = A.row_degrees() > 0
    assert np.allclose(sums[non_empty], 1.0, atol=1e-5)
    assert np.all(alpha >= 0)


def test_edge_softmax_is_shift_invariant(problem):
    A, _, _ = problem
    rng = np.random.default_rng(0)
    scores = rng.standard_normal(A.nnz).astype(np.float32)
    assert np.allclose(edge_softmax(A, scores), edge_softmax(A, scores + 100.0), atol=1e-5)


def test_edge_softmax_validation(problem):
    A, _, _ = problem
    with pytest.raises(ShapeError):
        edge_softmax(A, np.ones(A.nnz + 1))


def test_edge_softmax_empty_matrix():
    A = CSRMatrix.empty(4, 4)
    assert edge_softmax(A, np.empty(0)).shape == (0,)


def test_attention_aggregate_matches_dense_reference(problem):
    A, X, Y = problem
    Z = attention_aggregate(A, X, Y)
    # Dense reference.
    mask = A.to_dense() != 0
    raw = (X @ Y.T) / np.sqrt(X.shape[1])
    raw = np.where(raw >= 0, raw, 0.2 * raw)
    raw = np.where(mask, raw, -np.inf)
    with np.errstate(over="ignore", invalid="ignore"):
        e = np.exp(raw - raw.max(axis=1, keepdims=True))
        e = np.where(mask, e, 0.0)
        denom = e.sum(axis=1, keepdims=True)
        alpha = np.divide(e, denom, out=np.zeros_like(e), where=denom > 0)
    expected = alpha @ Y
    non_empty = A.row_degrees() > 0
    assert np.allclose(Z[non_empty], expected[non_empty], atol=1e-3)
    assert np.allclose(Z[~non_empty], 0.0)


def test_attention_aggregate_rows_are_convex_combinations(problem):
    A, X, Y = problem
    Z = attention_aggregate(A, X, Y)
    # Every output row lies within the min/max envelope of Y (convexity).
    non_empty = A.row_degrees() > 0
    assert np.all(Z[non_empty] <= Y.max(axis=0) + 1e-4)
    assert np.all(Z[non_empty] >= Y.min(axis=0) - 1e-4)


def test_sage_mean_aggregate_shape_and_values(problem):
    A, X, Y = problem
    out = sage_mean_aggregate(A, X, Y)
    assert out.shape == (A.nrows, 2 * X.shape[1])
    assert np.allclose(out[:, : X.shape[1]], X)
    # Check the neighbour mean of the densest row explicitly.
    u = int(np.argmax(A.row_degrees()))
    cols, _ = A.row(u)
    assert np.allclose(out[u, X.shape[1] :], Y[cols].mean(axis=0), atol=1e-4)


def test_sage_mean_aggregate_isolated_vertices_zero_mean():
    A = CSRMatrix.empty(5, 5)
    X = np.ones((5, 3), dtype=np.float32)
    out = sage_mean_aggregate(A, X)
    assert np.allclose(out[:, 3:], 0.0)


def test_sage_mean_aggregate_validation(problem):
    A, X, _ = problem
    with pytest.raises(ShapeError):
        sage_mean_aggregate(A, X[:-1])
