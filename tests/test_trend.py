"""Tests for the benchmark trend comparison (repro.bench.trend)."""

import numpy as np
import pytest

from repro.bench.record import record_benchmark
from repro.bench.trend import compare_paths, compare_records


def _record(seconds, speedup, *, pattern="sigmoid_embedding"):
    return {
        "rows": [
            {
                "benchmark": "plan_cache",
                "graph": "rmat n=2000",
                "d": 64,
                "pattern": pattern,
                "seconds": seconds,
                "speedup": speedup,
            }
        ]
    }


def test_no_regression_within_threshold():
    report = compare_records(_record(1.0, 10.0), _record(1.1, 9.5))
    assert report.ok
    assert {d.metric for d in report.deltas} == {"seconds", "speedup"}


def test_slower_seconds_flagged():
    report = compare_records(_record(1.0, 10.0), _record(1.3, 10.0))
    assert not report.ok
    (reg,) = report.regressions
    assert reg.metric == "seconds"
    assert reg.ratio == pytest.approx(1.3)
    assert reg.direction == -1


def test_lower_speedup_flagged():
    report = compare_records(_record(1.0, 10.0), _record(1.0, 7.0))
    assert not report.ok
    (reg,) = report.regressions
    assert reg.metric == "speedup"
    assert reg.direction == +1


def test_faster_is_never_a_regression():
    report = compare_records(_record(1.0, 10.0), _record(0.2, 50.0))
    assert report.ok


def test_noise_floor_ignores_tiny_timings():
    report = compare_records(_record(1e-4, 10.0), _record(9e-4, 10.0))
    assert report.ok
    assert all(d.metric != "seconds" for d in report.deltas)


def test_noise_floor_also_skips_ratios_of_noisy_timings():
    """A speedup derived from sub-floor timings is itself noise: a 2x
    jitter in a 0.5ms measurement must not trip the gate."""
    report = compare_records(_record(5e-4, 1.9), _record(9e-4, 1.1))
    assert report.ok
    assert not report.deltas  # both the timing and its ratio are skipped
    # ...but a speedup built on solid timings still gates:
    report = compare_records(_record(1.0, 1.9), _record(1.0, 1.1))
    assert not report.ok


def test_counter_fields_do_not_break_row_matching():
    """Run-dependent counters (cache_hits, packed_requests, ...) are not
    identity: a regression that also changes a counter must still match
    the baseline row and be flagged."""
    base = {
        "rows": [
            {
                "benchmark": "plan_cache",
                "pattern": "sigmoid_embedding",
                "d": 64,
                "cache_hits": 2,
                "warm_s": 0.006,
                "speedup": 36.0,
            }
        ]
    }
    cur = {
        "rows": [
            {
                "benchmark": "plan_cache",
                "pattern": "sigmoid_embedding",
                "d": 64,
                "cache_hits": 0,  # plan cache broke...
                "warm_s": 0.200,  # ...and the warm path got 33x slower
                "speedup": 1.1,
            }
        ]
    }
    report = compare_records(base, cur)
    assert not report.unmatched  # the row still matches
    assert not report.ok
    assert {d.metric for d in report.regressions} == {"warm_s", "speedup"}


def test_unmatched_rows_reported_not_failed():
    report = compare_records(
        _record(1.0, 10.0), _record(1.0, 10.0, pattern="fr_layout")
    )
    assert report.ok
    assert len(report.unmatched) == 2  # one current-only, one baseline-only


def test_compare_paths_files_and_directories(tmp_path):
    base_dir = tmp_path / "base"
    cur_dir = tmp_path / "cur"
    base_dir.mkdir()
    cur_dir.mkdir()
    record_benchmark(
        "runtime", _record(1.0, 10.0)["rows"], path=base_dir / "BENCH_runtime.json"
    )
    record_benchmark(
        "runtime", _record(2.0, 10.0)["rows"], path=cur_dir / "BENCH_runtime.json"
    )
    record_benchmark(
        "jit", _record(1.0, 10.0)["rows"], path=cur_dir / "BENCH_jit.json"
    )

    # file mode
    report = compare_paths(
        base_dir / "BENCH_runtime.json", cur_dir / "BENCH_runtime.json"
    )
    assert not report.ok

    # directory mode: BENCH_jit.json is current-only → noted, not failed
    report = compare_paths(base_dir, cur_dir)
    assert not report.ok
    assert any("BENCH_jit.json" in note for note in report.missing)

    with pytest.raises(ValueError):
        compare_paths(base_dir, cur_dir / "BENCH_runtime.json")


def test_cli_bench_compare_exit_codes(tmp_path, capsys):
    from repro.cli import main

    base = tmp_path / "BENCH_a.json"
    cur = tmp_path / "BENCH_b.json"
    record_benchmark("a", _record(1.0, 10.0)["rows"], path=base)
    record_benchmark("a", _record(2.0, 10.0)["rows"], path=cur)
    assert main(["bench", "compare", str(base), str(cur)]) == 1
    assert main(["bench", "compare", str(base), str(cur), "--no-fail"]) == 0
    assert main(["bench", "compare", str(base), str(base)]) == 0
    out = capsys.readouterr().out
    assert "regressed" in out


def test_jsonable_rows_round_trip(tmp_path):
    """Records written by record_benchmark feed straight into the trend
    comparison (numpy scalars and all)."""
    rows = [
        {
            "benchmark": "jit_speedup",
            "pattern": "sigmoid_embedding",
            "backend": "jit",
            "seconds": np.float64(0.5),
            "speedup_vs_optimized": np.float64(4.0),
        }
    ]
    p1 = record_benchmark("jit", rows, path=tmp_path / "BENCH_jit.json")
    slower = [
        dict(rows[0], seconds=np.float64(0.9), speedup_vs_optimized=np.float64(2.0))
    ]
    p2 = record_benchmark("jit", slower, path=tmp_path / "BENCH_jit2.json")
    report = compare_paths(p1, p2)
    assert {d.metric for d in report.regressions} == {
        "seconds",
        "speedup_vs_optimized",
    }
