"""Unit tests for the kernel code generator and the autotuner."""

import numpy as np
import pytest

from repro.core.autotune import (
    DEFAULT_BLOCK_CANDIDATES,
    autotune,
    clear_tuning_cache,
    tuning_cache_info,
)
from repro.core.codegen import (
    clear_kernel_cache,
    compile_kernel,
    generate_kernel_source,
    kernel_cache_info,
    supports_pattern,
)
from repro.core.operators import make_mlp_vop
from repro.core.patterns import get_pattern
from repro.core.generic import fusedmm_generic
from repro.errors import CodegenError
from repro.graphs.features import xavier_init
from repro.sparse import random_csr
from _helpers import make_xy


# ------------------------------------------------------------------ #
# Code generation
# ------------------------------------------------------------------ #
def test_supports_all_builtin_standard_patterns():
    for name in ["sigmoid_embedding", "fr_layout", "gcn", "spmm", "sddmm_dot"]:
        assert supports_pattern(get_pattern(name).resolved()), name


def test_does_not_support_user_operators():
    mlp = make_mlp_vop(xavier_init(8, 4, seed=0))
    pattern = get_pattern("gnn_mlp", vop=mlp).resolved()
    assert not supports_pattern(pattern)
    with pytest.raises(CodegenError):
        generate_kernel_source(pattern)


def test_generated_source_mentions_ops():
    source = generate_kernel_source(get_pattern("sigmoid_embedding").resolved())
    assert "einsum" in source  # fused dot product
    assert "sigmoid(" in source  # shared clipped sigmoid from core.mathops
    assert "reduceat" in source  # aggregation
    assert "def _generated_block_kernel" in source


def test_generated_source_fr_uses_difference():
    source = generate_kernel_source(get_pattern("fr_layout").resolved())
    assert "Xs - Yd" in source
    assert "W" in source  # MULDIFF consumes the VOP output


def test_compile_kernel_caches():
    clear_kernel_cache()
    assert kernel_cache_info()["cached_kernels"] == 0
    k1 = compile_kernel(get_pattern("gcn").resolved())
    k2 = compile_kernel(get_pattern("gcn").resolved())
    assert k1 is k2
    assert kernel_cache_info()["cached_kernels"] == 1


def test_compiled_kernel_exposes_source():
    kernel = compile_kernel(get_pattern("sigmoid_embedding").resolved())
    assert hasattr(kernel, "source")
    assert "VOP = MUL" in kernel.source


def test_generated_kernel_correct_small():
    A = random_csr(50, 50, density=0.1, seed=1)
    X, Y = make_xy(A, 12, seed=0)
    for name in ["sigmoid_embedding", "fr_layout", "gcn"]:
        kernel = compile_kernel(get_pattern(name).resolved())
        ref = fusedmm_generic(A, X, Y, pattern=name)
        assert np.allclose(kernel(A, X, Y, block_size=17), ref, atol=1e-3), name


def test_generated_kernel_amax_pattern():
    pattern = get_pattern(None, vop="SEL2ND", mop="EDGESCALE", aop="AMAX").resolved()
    assert supports_pattern(pattern)
    A = random_csr(30, 30, density=0.1, seed=2)
    X, Y = make_xy(A, 6, seed=1)
    kernel = compile_kernel(pattern)
    ref = fusedmm_generic(A, X, Y, pattern=get_pattern(None, vop="SEL2ND", mop="EDGESCALE", aop="AMAX"))
    assert np.allclose(kernel(A, X, Y), ref, atol=1e-4)


# ------------------------------------------------------------------ #
# Autotuning
# ------------------------------------------------------------------ #
def test_autotune_returns_valid_config(small_square_csr):
    clear_tuning_cache()
    X, Y = make_xy(small_square_csr, 8, seed=0)
    result = autotune(small_square_csr, X, Y, pattern="sigmoid_embedding", repeats=1)
    assert result.strategy in ("row", "edge")
    assert result.block_size > 0
    assert result.best_time > 0
    assert len(result.trials) >= 1 + len(DEFAULT_BLOCK_CANDIDATES)


def test_autotune_caches_results(small_square_csr):
    clear_tuning_cache()
    X, Y = make_xy(small_square_csr, 8, seed=0)
    r1 = autotune(small_square_csr, X, Y, pattern="gcn", repeats=1)
    before = tuning_cache_info()["cached_results"]
    r2 = autotune(small_square_csr, X, Y, pattern="gcn", repeats=1)
    assert r1 is r2
    assert tuning_cache_info()["cached_results"] == before


def test_autotune_cache_can_be_bypassed(small_square_csr):
    X, Y = make_xy(small_square_csr, 8, seed=0)
    r1 = autotune(small_square_csr, X, Y, pattern="gcn", repeats=1, use_cache=False)
    r2 = autotune(small_square_csr, X, Y, pattern="gcn", repeats=1, use_cache=False)
    assert r1 is not r2


def test_autotune_single_strategy(small_square_csr):
    X, Y = make_xy(small_square_csr, 8, seed=0)
    result = autotune(
        small_square_csr, X, Y, pattern="gcn", strategies=("edge",), block_candidates=(64, 256), repeats=1, use_cache=False
    )
    assert result.strategy == "edge"
    assert result.block_size in (64, 256)


def test_autotune_unknown_strategy(small_square_csr):
    X, Y = make_xy(small_square_csr, 8, seed=0)
    with pytest.raises(ValueError):
        autotune(small_square_csr, X, Y, strategies=("magic",), repeats=1, use_cache=False)


def test_autotune_result_as_dict(small_square_csr):
    X, Y = make_xy(small_square_csr, 8, seed=0)
    result = autotune(small_square_csr, X, Y, pattern="spmm", repeats=1, use_cache=False)
    d = result.as_dict()
    assert set(d) == {"strategy", "block_size", "best_time", "num_trials"}
