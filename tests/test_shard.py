"""Tests for the sharded multi-process execution tier.

Covers the three contracts the tier advertises:

* **Bitwise equivalence** — ``run_sharded``/``submit_sharded``/epoch
  streams produce results bitwise identical to sequential single-process
  ``fusedmm`` for 1, 2 and 4 shards, across patterns and the X-less SpMM
  path.
* **Crash safety** — a hard-killed worker raises
  :class:`~repro.errors.WorkerCrashError` promptly (never a hang), the
  pool respawns the worker, and subsequent calls succeed; in-worker
  exceptions surface as :class:`~repro.errors.WorkerError` with the
  worker still alive.
* **Shard assignment is a partition** — a hypothesis property test checks
  that :func:`~repro.runtime.shard.assign_shards` never loses, duplicates
  or reorders a plan partition.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fused import fusedmm
from repro.core.partition import RowPartition, part1d
from repro.errors import PartitionError, WorkerCrashError, WorkerError
from repro.graphs import random_features, rmat
from repro.runtime import KernelRuntime, WorkerPool, assign_shards
from repro.sparse import random_csr

from _helpers import make_xy

PATTERNS = ["sigmoid_embedding", "fr_layout", "gcn", "spmm"]


@pytest.fixture(scope="module")
def medium_problem():
    """A graph big enough to split into several plan partitions."""
    A = rmat(1500, 24_000, seed=4)
    X = random_features(A.nrows, 12, seed=2)
    return A, X


# ---------------------------------------------------------------------- #
# Shard assignment (pure planning, no processes)
# ---------------------------------------------------------------------- #
def _partition_list(sizes):
    """Build a contiguous RowPartition list from (num_rows, nnz) pairs."""
    parts, start = [], 0
    for num_rows, nnz in sizes:
        parts.append(RowPartition(start=start, stop=start + num_rows, nnz=nnz))
        start += num_rows
    return parts


@given(
    sizes=st.lists(
        st.tuples(st.integers(1, 50), st.integers(0, 10_000)), max_size=24
    ),
    num_shards=st.integers(1, 8),
)
@settings(max_examples=200, deadline=None)
def test_assign_shards_is_a_partition(sizes, num_shards):
    """No partition is lost, duplicated or reordered; shard metadata adds up."""
    parts = _partition_list(sizes)
    plan = assign_shards(parts, num_shards)
    assert plan.num_shards == num_shards
    assert len(plan.assignments) == num_shards
    flattened = [p for a in plan.assignments for p in a.parts]
    assert flattened == parts  # same objects, same order, nothing lost
    assert plan.total_nnz == sum(p.nnz for p in parts)
    for i, a in enumerate(plan.assignments):
        assert a.shard == i
        assert a.nnz == sum(p.nnz for p in a.parts)


def test_assign_shards_balances_by_nnz():
    parts = _partition_list([(10, 1000)] * 8)
    plan = assign_shards(parts, 4)
    assert [a.nnz for a in plan.assignments] == [2000] * 4
    assert plan.balance() == 1.0
    assert plan.busy_shards == 4


def test_assign_shards_more_shards_than_parts():
    parts = _partition_list([(10, 500), (10, 500)])
    plan = assign_shards(parts, 4)
    flattened = [p for a in plan.assignments for p in a.parts]
    assert flattened == parts
    assert plan.busy_shards <= 2


def test_assign_shards_rejects_nonpositive():
    with pytest.raises(PartitionError):
        assign_shards([], 0)


def test_assign_shards_empty_and_zero_nnz():
    assert assign_shards([], 3).total_nnz == 0
    parts = _partition_list([(5, 0), (5, 0), (5, 0)])
    plan = assign_shards(parts, 2)
    assert [p for a in plan.assignments for p in a.parts] == parts


def test_runtime_shard_plan_reuses_plan_partitions(medium_problem):
    A, _ = medium_problem
    rt = KernelRuntime(num_threads=1)
    plan = rt.plan(A)
    shard_plan = rt.shard_plan(A, shards=2)
    assert [p for a in shard_plan.assignments for p in a.parts] == list(
        plan.partitions
    )
    info = shard_plan.describe()
    assert info["num_shards"] == 2
    assert sum(info["shard_nnz"]) == A.nnz


# ---------------------------------------------------------------------- #
# Bitwise equivalence across shard counts
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("shards", [1, 2, 4])
def test_run_sharded_bitwise_equals_fusedmm(shards, medium_problem):
    A, X = medium_problem
    ref = fusedmm(A, X, X, pattern="sigmoid_embedding", num_threads=1)
    with KernelRuntime(num_threads=1, processes=shards) as rt:
        Z = rt.run_sharded(A, X, pattern="sigmoid_embedding")
        assert np.array_equal(Z, ref)
        # Repeated call: matrix already in shared memory, plans cached.
        assert np.array_equal(rt.run_sharded(A, X, pattern="sigmoid_embedding"), ref)
        stats = rt.stats()
        assert stats["sharded_jobs"] == 2
        assert stats["workers"]["registered_matrices"] == 1


@pytest.mark.parametrize("pattern", PATTERNS)
def test_run_sharded_patterns_bitwise(pattern, medium_problem):
    A, X = medium_problem
    ref = fusedmm(A, X, X, pattern=pattern, num_threads=1)
    with KernelRuntime(num_threads=1, processes=2) as rt:
        assert np.array_equal(rt.run_sharded(A, X, pattern=pattern), ref)


def test_run_sharded_spmm_without_x(medium_problem):
    A, X = medium_problem
    ref = KernelRuntime(num_threads=1).run(A, None, X, pattern="gcn")
    with KernelRuntime(num_threads=1, processes=2) as rt:
        assert np.array_equal(rt.run_sharded(A, None, X, pattern="gcn"), ref)


def test_run_sharded_rectangular(medium_problem):
    A = random_csr(300, 900, density=0.05, seed=8)
    X, Y = make_xy(A, 8, seed=3)
    ref = fusedmm(A, X, Y, pattern="sigmoid_embedding", num_threads=1)
    with KernelRuntime(num_threads=1, processes=2) as rt:
        assert np.array_equal(
            rt.run_sharded(A, X, Y, pattern="sigmoid_embedding"), ref
        )


def test_submit_sharded_returns_future(medium_problem):
    A, X = medium_problem
    ref = fusedmm(A, X, X, pattern="sigmoid_embedding", num_threads=1)
    with KernelRuntime(num_threads=1, processes=2) as rt:
        futs = [rt.submit_sharded(A, X, pattern="sigmoid_embedding") for _ in range(3)]
        for fut in futs:
            assert np.array_equal(fut.result(timeout=60), ref)
        assert rt.stats()["sharded_submitted"] == 3


def test_run_sharded_without_processes_falls_back(medium_problem):
    A, X = medium_problem
    ref = fusedmm(A, X, X, pattern="sigmoid_embedding", num_threads=1)
    rt = KernelRuntime(num_threads=1)  # processes=0
    assert np.array_equal(rt.run_sharded(A, X, pattern="sigmoid_embedding"), ref)
    assert rt.stats()["sharded_jobs"] == 0
    fut = rt.submit_sharded(A, X, pattern="sigmoid_embedding")
    assert np.array_equal(fut.result(timeout=30), ref)


def test_shards_implies_processes():
    rt = KernelRuntime(num_threads=1, shards=2)
    assert rt.processes == 2
    assert rt.shards == 2


def test_epoch_stream_routes_through_shards(medium_problem):
    A, X = medium_problem
    ref = fusedmm(A, X, X, pattern="sigmoid_embedding", num_threads=1)
    with KernelRuntime(num_threads=1, processes=2, shard_min_nnz=1000) as rt:
        stream = rt.epochs(A, pattern="sigmoid_embedding")
        assert np.array_equal(stream.step(X), ref)
        assert rt.stats()["sharded_jobs"] == 1
        # Derived matrices (run_on) go through the one-shot sharded path
        # and their shared segments are torn down afterwards.
        sub = A.row_slice(0, 1200)
        ref_sub = fusedmm(sub, X[:1200], X, pattern="sigmoid_embedding", num_threads=1)
        assert np.array_equal(stream.run_on(sub, X[:1200], X), ref_sub)
        assert rt.stats()["workers"]["registered_matrices"] == 1


def test_small_matrices_stay_in_process():
    A = random_csr(60, 60, density=0.05, seed=3)
    X = random_features(60, 8, seed=0)
    with KernelRuntime(num_threads=1, processes=2) as rt:
        stream = rt.epochs(A, pattern="sigmoid_embedding")
        ref = fusedmm(A, X, X, pattern="sigmoid_embedding", num_threads=1)
        assert np.array_equal(stream.step(X), ref)
        # Below shard_min_nnz nothing was dispatched to workers …
        assert rt.stats()["sharded_jobs"] == 0
        # … and the pool was never even spawned (lazy creation).
        assert rt.stats()["workers"] is None


# ---------------------------------------------------------------------- #
# Worker pool lifecycle and failure handling
# ---------------------------------------------------------------------- #
def test_worker_crash_raises_cleanly_and_pool_recovers(medium_problem):
    A, X = medium_problem
    ref = fusedmm(A, X, X, pattern="sigmoid_embedding", num_threads=1)
    with KernelRuntime(num_threads=1, processes=2) as rt:
        assert np.array_equal(rt.run_sharded(A, X, pattern="sigmoid_embedding"), ref)
        rt.workers.kill_worker(0)
        with pytest.raises(WorkerCrashError):
            rt.run_sharded(A, X, pattern="sigmoid_embedding")
        stats = rt.stats()["workers"]
        assert stats["restarts"] >= 1
        assert stats["alive"] == 2
        # The respawned worker reloads the shared matrix and serves again.
        assert np.array_equal(rt.run_sharded(A, X, pattern="sigmoid_embedding"), ref)


def test_worker_exception_propagates_without_crash(medium_problem):
    A, _ = medium_problem
    X_bad = random_features(A.nrows + 5, 12, seed=0)  # wrong row count
    with KernelRuntime(num_threads=1, processes=2) as rt:
        with pytest.raises(WorkerError):
            rt.run_sharded(A, X_bad, pattern="sigmoid_embedding")
        stats = rt.stats()["workers"]
        assert stats["alive"] == 2
        assert stats["restarts"] == 0
        X = random_features(A.nrows, 12, seed=1)
        ref = fusedmm(A, X, X, pattern="sigmoid_embedding", num_threads=1)
        assert np.array_equal(rt.run_sharded(A, X, pattern="sigmoid_embedding"), ref)


def test_worker_pool_release_matrix(medium_problem):
    A, X = medium_problem
    with KernelRuntime(num_threads=1, processes=2) as rt:
        rt.run_sharded(A, X, pattern="sigmoid_embedding")
        pool = rt.workers
        assert pool.registered_matrices == 1
        key = rt.plan(A).key.fingerprint
        pool.release_matrix(key)
        assert pool.registered_matrices == 0
        # Releasing twice is a no-op; the matrix reloads on demand.
        pool.release_matrix(key)
        ref = fusedmm(A, X, X, pattern="sigmoid_embedding", num_threads=1)
        assert np.array_equal(rt.run_sharded(A, X, pattern="sigmoid_embedding"), ref)


def test_worker_pool_matrix_lru_bounds_shared_memory():
    """The matrix registry is a bounded LRU: registering beyond
    ``matrix_cache`` evicts the least-recently-used matrix, and evicted
    matrices transparently reload on their next use."""
    mats = [random_csr(120, 120, density=0.08, seed=s) for s in range(3)]
    X = random_features(120, 6, seed=0)
    refs = [fusedmm(A, X, X, num_threads=1) for A in mats]
    with KernelRuntime(
        num_threads=1, processes=2, worker_matrix_cache=2
    ) as rt:
        for A in mats:
            rt.run_sharded(A, X)
        assert rt.workers.registered_matrices == 2
        # mats[0] was evicted; running it again re-registers (and evicts
        # the new LRU) with results still bitwise identical.
        assert np.array_equal(rt.run_sharded(mats[0], X), refs[0])
        assert rt.workers.registered_matrices == 2
        for A, ref in zip(mats, refs):
            assert np.array_equal(rt.run_sharded(A, X), ref)


def test_bench_shard_speedup_baseline_is_one_shard_row():
    """speedup_vs_1shard is anchored to the shards==1 row even when the
    shard counts are listed out of order."""
    from repro.bench.shard_bench import bench_shard_scaling

    rows = bench_shard_scaling(
        num_nodes=300, avg_degree=8, dim=8, repeats=1, shard_counts=(2, 1)
    )
    by_shards = {r["shards"]: r for r in rows}
    assert by_shards[1]["speedup_vs_1shard"] == 1.0


def test_worker_pool_ping_and_close():
    pool = WorkerPool(2)
    assert pool.ping() == 2
    assert pool.stats()["alive"] == 2
    pool.close()
    pool.close()  # idempotent
    with pytest.raises(WorkerError):
        pool.ping()


def test_worker_pool_rejects_oversized_shard_plan(medium_problem):
    A, X = medium_problem
    with KernelRuntime(num_threads=1, processes=2) as rt:
        plan = rt.plan(A)
        oversized = assign_shards(plan.partitions, 5)
        from repro.runtime.workers import plan_spec_from_plan

        spec = plan_spec_from_plan(plan)
        with pytest.raises(WorkerError):
            rt.workers.run_sharded(
                plan.key.fingerprint, A, spec, oversized, X, X
            )


def test_runtime_close_shuts_workers_down(medium_problem):
    A, X = medium_problem
    rt = KernelRuntime(num_threads=1, processes=2)
    rt.run_sharded(A, X, pattern="sigmoid_embedding")
    rt.close()
    assert rt.stats()["workers"] is None
    # Closed runtimes stay usable in process.
    ref = fusedmm(A, X, X, pattern="sigmoid_embedding", num_threads=1)
    assert np.array_equal(rt.run_sharded(A, X, pattern="sigmoid_embedding"), ref)


def test_unpicklable_pattern_falls_back_in_process(medium_problem):
    """Custom patterns built from lambdas cannot cross process boundaries;
    the sharded paths detect that and run in process instead of failing."""
    A, X = medium_problem
    from repro.core.operators import OpKind, Operator

    sop = Operator(
        name="CUSTOM_SCALE",
        kinds=(OpKind.SOP,),
        edge_fn=lambda s, *rest: 0.5 * s,
        batch_fn=lambda s, *rest: 0.5 * s,
    )
    with KernelRuntime(num_threads=1, processes=2) as rt:
        ref = KernelRuntime(num_threads=1).run(
            A, X, pattern="sigmoid_embedding", sop=sop
        )
        Z = rt.run_sharded(A, X, pattern="sigmoid_embedding", sop=sop)
        assert np.array_equal(Z, ref)
        assert rt.stats()["sharded_jobs"] == 0


def test_part1d_parts_survive_shard_roundtrip(medium_problem):
    """The derived-matrix path ships recomputed part1d partitions; check the
    (start, stop, nnz) wire format reconstructs them exactly."""
    A, _ = medium_problem
    parts = part1d(A, 6)
    rebuilt = [RowPartition(*(p.start, p.stop, p.nnz)) for p in parts]
    assert rebuilt == parts


# ---------------------------------------------------------------------- #
# Apps train through the sharded tier
# ---------------------------------------------------------------------- #
def test_apps_accept_processes_and_match_in_process():
    """``processes=`` reaches the runtime, and sharded training produces
    exactly the trajectory of in-process training (determinism carries
    through the apps)."""
    from repro.apps import FRLayout, FRLayoutConfig
    from repro.graphs import Graph

    A = rmat(1200, 20_000, seed=6)
    graph = Graph(name="shardtest", adjacency=A)

    def run_layout(processes):
        layout = FRLayout(
            graph,
            FRLayoutConfig(
                dim=2, iterations=2, repulsive_samples=2, seed=0,
                processes=processes,
            ),
        )
        # Exercise the sharded tier even for this mid-sized graph.
        layout._runtime.shard_min_nnz = 1000
        return layout.run()

    baseline = run_layout(0)
    sharded = run_layout(2)
    assert np.array_equal(baseline, sharded)


def test_app_configs_expose_processes():
    from repro.apps import (
        Force2VecConfig,
        FRLayoutConfig,
        GCNConfig,
        VerseConfig,
    )

    for cfg_cls in (Force2VecConfig, FRLayoutConfig, GCNConfig, VerseConfig):
        cfg = cfg_cls(processes=3)
        assert cfg.processes == 3
