"""Unit tests for the application pattern registry (Table III)."""

import pytest

from repro.core.operators import make_mlp_vop
from repro.core.patterns import OpPattern, get_pattern, list_patterns, register_pattern
from repro.errors import PatternError
from repro.graphs.features import xavier_init


def test_builtin_patterns_present():
    names = list_patterns()
    for expected in ["sigmoid_embedding", "fr_layout", "gcn", "gnn_mlp", "spmm", "sddmm_dot"]:
        assert expected in names


def test_get_pattern_by_name_and_instance():
    p = get_pattern("gcn")
    assert isinstance(p, OpPattern)
    assert get_pattern(p) is p


def test_get_pattern_unknown():
    with pytest.raises(PatternError):
        get_pattern("no_such_pattern")


def test_get_pattern_bad_type():
    with pytest.raises(PatternError):
        get_pattern(3.14)


def test_get_pattern_none_with_overrides():
    p = get_pattern(None, vop="MUL", rop="RSUM", sop="SIGMOID", mop="MUL", aop="ASUM")
    resolved = p.resolved()
    assert resolved.is_sigmoid_embedding


def test_pattern_with_ops_override():
    p = get_pattern("sigmoid_embedding", sop="RELU")
    resolved = p.resolved()
    assert resolved.sop.name == "RELU"
    assert not resolved.is_sigmoid_embedding


def test_resolved_table3_rows():
    emb = get_pattern("sigmoid_embedding").resolved()
    assert emb.is_sigmoid_embedding and emb.message_is_scalar
    fr = get_pattern("fr_layout").resolved()
    assert fr.is_fr_layout and fr.message_is_scalar
    gcn = get_pattern("gcn").resolved()
    assert gcn.is_spmm_like and not gcn.message_is_scalar
    spmm = get_pattern("spmm").resolved()
    assert spmm.is_spmm_like


def test_resolved_op_names():
    names = get_pattern("sigmoid_embedding").resolved().op_names()
    assert names == {
        "vop": "MUL",
        "rop": "RSUM",
        "sop": "SIGMOID",
        "mop": "MUL",
        "aop": "ASUM",
    }


def test_invalid_slot_assignment_rejected():
    # RSUM is a reduction and may not occupy the VOP slot.
    with pytest.raises(PatternError):
        OpPattern(name="bad", vop="RSUM", aop="ASUM").resolved()


def test_aop_must_be_real_accumulator():
    with pytest.raises(PatternError):
        OpPattern(name="bad", vop="MUL", aop="NOOP").resolved()


def test_register_pattern_and_duplicate():
    p = OpPattern(name="test_custom_pattern", vop="ADD", aop="ASUM")
    register_pattern(p, overwrite=True)
    assert get_pattern("test_custom_pattern").vop == "ADD"
    with pytest.raises(PatternError):
        register_pattern(p)


def test_gnn_mlp_pattern_with_user_operator():
    mlp = make_mlp_vop(xavier_init(8, 4, seed=0))
    p = get_pattern("gnn_mlp", vop=mlp)
    resolved = p.resolved()
    assert resolved.vop is mlp
    assert resolved.aop.name == "AMAX"


def test_message_is_scalar_depends_on_rop():
    scalar = OpPattern(name="s", vop="MUL", rop="RSUM", aop="ASUM").resolved()
    vector = OpPattern(name="v", vop="MUL", rop="NOOP", aop="ASUM").resolved()
    assert scalar.message_is_scalar
    assert not vector.message_is_scalar
