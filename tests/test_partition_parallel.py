"""Unit tests for PART1D partitioning and the thread-parallel driver."""

import numpy as np
import pytest

from repro.core.parallel import ParallelConfig, available_threads, run_partitioned
from repro.core.partition import RowPartition, part1d, partition_balance
from repro.errors import PartitionError
from repro.sparse import CSRMatrix, block_diagonal_csr, random_csr
from repro.graphs.generators import star


def _check_cover(parts, nrows):
    assert parts[0].start == 0
    assert parts[-1].stop == nrows
    for prev, cur in zip(parts, parts[1:]):
        assert prev.stop == cur.start


def test_part1d_covers_all_rows(small_square_csr):
    for t in (1, 2, 3, 7, 16):
        parts = part1d(small_square_csr, t)
        assert len(parts) == t
        _check_cover(parts, small_square_csr.nrows)


def test_part1d_nnz_sums_to_total(small_square_csr):
    parts = part1d(small_square_csr, 5)
    assert sum(p.nnz for p in parts) == small_square_csr.nnz


def test_part1d_balances_uniform_matrix():
    A = random_csr(400, 400, density=0.05, seed=1)
    parts = part1d(A, 4)
    balance = partition_balance(parts)
    assert balance < 1.3  # uniform matrices should be close to perfectly balanced


def test_part1d_single_part_is_everything(small_square_csr):
    parts = part1d(small_square_csr, 1)
    assert parts[0].start == 0 and parts[0].stop == small_square_csr.nrows
    assert parts[0].nnz == small_square_csr.nnz


def test_part1d_more_parts_than_rows():
    A = random_csr(3, 3, density=0.5, seed=0)
    parts = part1d(A, 10)
    assert len(parts) == 10
    _check_cover(parts, 3)


def test_part1d_empty_matrix():
    A = CSRMatrix.empty(5, 5)
    parts = part1d(A, 3)
    _check_cover(parts, 5)
    assert sum(p.nnz for p in parts) == 0


def test_part1d_star_graph_hub_row():
    # The hub row holds almost all nonzeros; PART1D cannot split it, but
    # must still produce a valid cover.
    A = star(100)
    parts = part1d(A, 4)
    _check_cover(parts, A.nrows)
    assert max(p.nnz for p in parts) >= A.nnz // 2


def test_part1d_accepts_indptr_array(small_square_csr):
    parts_a = part1d(small_square_csr, 3)
    parts_b = part1d(small_square_csr.indptr, 3)
    assert parts_a == parts_b


def test_part1d_invalid_inputs():
    with pytest.raises(PartitionError):
        part1d(CSRMatrix.identity(3), 0)
    with pytest.raises(PartitionError):
        part1d(np.array([]), 2)


def test_partition_balance_skewed():
    A = block_diagonal_csr([50, 2, 2, 2])
    balanced = part1d(A, 4)
    assert partition_balance(balanced) >= 1.0


def test_partition_balance_empty_list():
    with pytest.raises(PartitionError):
        partition_balance([])


def test_row_partition_len():
    p = RowPartition(3, 9, 42)
    assert p.num_rows == 6
    assert len(p) == 6


# ------------------------------------------------------------------ #
# Parallel driver
# ------------------------------------------------------------------ #
def test_parallel_config_defaults():
    cfg = ParallelConfig()
    assert cfg.num_threads >= 1
    assert cfg.num_parts >= cfg.num_threads


def test_parallel_config_validation():
    with pytest.raises(PartitionError):
        ParallelConfig(num_threads=-1)
    with pytest.raises(PartitionError):
        ParallelConfig(parts_per_thread=0)


def test_available_threads_positive():
    assert available_threads() >= 1


@pytest.mark.parametrize("threads", [1, 2, 4])
def test_run_partitioned_writes_disjoint_slices(small_square_csr, threads):
    A = small_square_csr
    Z = np.zeros((A.nrows, 4))
    degrees = A.row_degrees()

    def kernel(part, z_slice):
        # Write the row degree into every column of the partition's rows.
        z_slice[:] = degrees[part.start : part.stop, None]

    run_partitioned(A, Z, kernel, config=ParallelConfig(num_threads=threads))
    assert np.allclose(Z, degrees[:, None])


def test_run_partitioned_propagates_exceptions(small_square_csr):
    Z = np.zeros((small_square_csr.nrows, 2))

    def broken(part, z_slice):
        raise RuntimeError("kernel failed")

    with pytest.raises(RuntimeError, match="kernel failed"):
        run_partitioned(small_square_csr, Z, broken, config=ParallelConfig(num_threads=2))


def test_run_partitioned_with_explicit_parts(small_square_csr):
    A = small_square_csr
    Z = np.zeros((A.nrows, 1))
    parts = part1d(A, 3)
    calls = []

    def kernel(part, z_slice):
        calls.append(part)
        z_slice[:] = 1.0

    run_partitioned(A, Z, kernel, parts=parts, config=ParallelConfig(num_threads=1))
    assert np.allclose(Z, 1.0)
    assert all(p.num_rows > 0 for p in calls)
