"""Unit tests for the benchmark-harness utilities (tables, reports, sweeps,
kernel comparison)."""

import numpy as np
import pytest

from repro.bench import (
    comparison_block,
    compare_kernels,
    degree_sweep_graphs,
    dimension_sweep,
    ExperimentReport,
    format_markdown_table,
    format_table,
    format_value,
    kernel_callables,
    load_results,
    make_operands,
    save_results,
)
from repro.sparse import random_csr


# ------------------------------------------------------------------ #
# Table formatting
# ------------------------------------------------------------------ #
def test_format_value_floats_and_misc():
    assert format_value(0.0) == "0"
    assert format_value(1.23456789) == "1.235"
    assert format_value(1234567.0).endswith("e+06")
    assert format_value(1e-7).endswith("e-07")
    assert format_value("abc") == "abc"
    assert format_value(None) == "None"
    assert format_value(True) == "True"


def test_format_table_alignment_and_title():
    rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy", "c": 3.0}]
    out = format_table(rows, title="My Table")
    lines = out.splitlines()
    assert lines[0] == "My Table"
    assert "a" in lines[1] and "c" in lines[1]
    assert len(lines) == 2 + 1 + 2  # title + header + separator + 2 rows


def test_format_table_empty():
    assert "(no rows)" in format_table([], title="empty")


def test_format_table_explicit_columns():
    rows = [{"a": 1, "b": 2}]
    out = format_table(rows, columns=["b"])
    assert "a" not in out.splitlines()[0]


def test_format_markdown_table():
    rows = [{"x": 1, "y": 2.5}]
    md = format_markdown_table(rows)
    assert md.startswith("| x | y |")
    assert "| 1 | 2.5 |" in md
    assert format_markdown_table([]) == "(no rows)"


# ------------------------------------------------------------------ #
# Reports
# ------------------------------------------------------------------ #
def test_save_and_load_results(tmp_path):
    data = [{"graph": "g", "value": 1.5}]
    path = save_results(data, tmp_path / "sub" / "res.json")
    assert path.exists()
    assert load_results(path) == data


def test_comparison_block_contains_both_tables():
    block = comparison_block(
        "Table X",
        [{"a": 1}],
        [{"a": 2}],
        note="a note",
    )
    assert "Paper:" in block and "Measured:" in block and "a note" in block


def test_experiment_report_render_and_write(tmp_path):
    report = ExperimentReport("Repro Report")
    report.add_section("Intro", "hello")
    report.add_comparison("Table X", [{"a": 1}], [{"a": 2}], note="shape holds")
    text = report.render()
    assert text.startswith("# Repro Report")
    assert "## Intro" in text and "## Table X" in text
    path = report.write(tmp_path / "report.md")
    assert path.read_text() == text


# ------------------------------------------------------------------ #
# Sweeps
# ------------------------------------------------------------------ #
def test_degree_sweep_graphs_monotone_degrees():
    items = list(degree_sweep_graphs(500, [2, 8], seed=0))
    assert len(items) == 2
    assert items[1].realised_avg_degree > items[0].realised_avg_degree
    assert items[0].graph.nrows == 500


def test_dimension_sweep_validation():
    assert dimension_sweep([16, 32]) == [16, 32]
    with pytest.raises(ValueError):
        dimension_sweep([0, 8])


# ------------------------------------------------------------------ #
# Kernel comparison harness
# ------------------------------------------------------------------ #
@pytest.fixture(scope="module")
def A():
    return random_csr(150, 150, density=0.05, seed=33)


def test_make_operands_shapes(A):
    X, Y = make_operands(A, 8, seed=0)
    assert X.shape == (A.nrows, 8)
    assert Y is X  # square matrices share features by default
    rect = random_csr(20, 50, density=0.1, seed=1)
    X2, Y2 = make_operands(rect, 8)
    assert X2.shape == (20, 8) and Y2.shape == (50, 8)


def test_kernel_callables_agree(A):
    X, Y = make_operands(A, 8, seed=0)
    fns = kernel_callables(A, X, Y, pattern="sigmoid_embedding")
    assert set(fns) == {"dgl", "fusedmm", "fusedmmopt"}
    outs = {name: fn() for name, fn in fns.items()}
    assert np.allclose(outs["dgl"], outs["fusedmmopt"], atol=1e-3)
    assert np.allclose(outs["fusedmm"], outs["fusedmmopt"], atol=1e-3)


def test_compare_kernels_row_contents(A):
    row = compare_kernels("toy", A, 16, pattern="sigmoid_embedding", repeats=1)
    for key in ["graph", "app", "d", "dgl_s", "fusedmmopt_s", "speedup_opt_vs_dgl", "fusedmm_s"]:
        assert key in row
    assert row["graph"] == "toy" and row["d"] == 16
    assert row["dgl_s"] > 0 and row["fusedmmopt_s"] > 0


def test_compare_kernels_without_generic(A):
    row = compare_kernels("toy", A, 16, pattern="gcn", repeats=1, include_generic=False)
    assert "fusedmm_s" not in row
