"""The durable training-job subsystem: driver, manager, serve surface.

Three layers under test:

* ``export_state``/``load_state`` on all four apps — a resumed run must
  be **bitwise identical** to the uninterrupted seeded run (the
  determinism contract), including a hypothesis sweep over specs;
* :class:`~repro.jobs.JobManager` — admission control, cancellation,
  crash requeue under the retry budget, drain + recover, and the
  accounting invariant ``submitted == completed + failed + cancelled``;
* the serving surface — ``/v1/train`` + ``/v1/jobs`` over HTTP and the
  binary wire protocol, answering the same documents and bitwise-equal
  results.
"""

from __future__ import annotations

import threading
import time
from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import (
    DrainingError,
    JobError,
    JobNotFoundError,
    QueueFullError,
)
from repro.jobs import (
    JOB_APPS,
    CheckpointStore,
    JobManager,
    JobSpec,
    build_app,
    run_training,
)

settings.register_profile("repro-jobs", deadline=None, max_examples=8)
settings.load_profile("repro-jobs")

#: Tiny spec shared by most tests — cora at 5% is ~135 nodes.
def _spec(app: str = "force2vec", **overrides) -> JobSpec:
    base = dict(
        app=app, dataset="cora", scale=0.05, dim=8, epochs=4, seed=3,
        checkpoint_every=1,
    )
    base.update(overrides)
    return JobSpec(**base)


# ---------------------------------------------------------------------- #
# Determinism: export/load on every app
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("app_kind", JOB_APPS)
def test_resume_is_bitwise_identical_per_app(app_kind, tmp_path):
    spec = _spec(app_kind)
    reference = run_training(spec).output

    store = CheckpointStore(tmp_path / "ck")
    partial = run_training(
        spec, store=store, should_stop=lambda: store.checkpoints_written >= 2
    )
    assert partial.stopped and partial.epochs_done < spec.epochs

    resumed = run_training(spec, store=store)  # fresh app, loads checkpoint
    assert resumed.resumed_from == partial.epochs_done
    assert resumed.epochs_done == spec.epochs
    assert resumed.output.dtype == reference.dtype
    assert np.array_equal(resumed.output, reference)


@pytest.mark.parametrize("app_kind", JOB_APPS)
def test_export_state_marks_epochs_completed(app_kind):
    spec = _spec(app_kind, epochs=2)
    _, app = build_app(spec)
    assert app.epochs_completed == 0
    app.train_epoch(0)
    assert app.epochs_completed == 1
    state = app.export_state()
    _, fresh = build_app(spec)
    fresh.load_state(state)
    assert fresh.epochs_completed == 1


@given(
    app_kind=st.sampled_from(JOB_APPS),
    dim=st.integers(min_value=2, max_value=12),
    epochs_done=st.integers(min_value=0, max_value=2),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_state_round_trips_bitwise_through_the_store(
    tmp_path_factory, app_kind, dim, epochs_done, seed
):
    """hypothesis: any exported state survives the store bitwise and a
    fresh app loaded from it continues exactly where the donor stopped."""
    spec = _spec(app_kind, dim=dim, seed=seed, epochs=3)
    _, app = build_app(spec)
    for epoch in range(epochs_done):
        app.train_epoch(epoch)
    state = app.export_state()

    store = CheckpointStore(tmp_path_factory.mktemp("hyp"))
    store.save(epochs_done, state)
    loaded = store.latest().state
    _, twin = build_app(spec)
    twin.load_state(loaded)
    restate = twin.export_state()

    assert set(restate) == set(state)
    for key, value in state.items():
        if isinstance(value, np.ndarray):
            assert restate[key].dtype == value.dtype, key
            assert np.array_equal(restate[key], value), key
        else:
            assert restate[key] == value, key


# ---------------------------------------------------------------------- #
# Spec validation
# ---------------------------------------------------------------------- #
def test_spec_rejects_unknown_apps_and_fields():
    with pytest.raises(JobError):
        JobSpec(app="word2vec")
    with pytest.raises(JobError):
        JobSpec(epochs=0)
    with pytest.raises(JobError):
        JobSpec.from_dict({"app": "force2vec", "learning_rate": 0.1})
    spec = JobSpec.from_dict(_spec().to_dict())
    assert spec == _spec()


# ---------------------------------------------------------------------- #
# Fake apps for manager-level tests (no real training)
# ---------------------------------------------------------------------- #
class _FakeApp:
    """Deterministic stand-in satisfying the uniform app surface."""

    def __init__(self, spec: JobSpec, gate: threading.Event | None = None):
        self.spec = spec
        self.gate = gate
        self._epochs = 0
        self._value = float(spec.seed)

    @property
    def epochs_completed(self) -> int:
        return self._epochs

    def train_epoch(self, epoch: int):
        if self.gate is not None:
            self.gate.wait(timeout=30.0)
        self._epochs += 1
        self._value += epoch + 1
        return SimpleNamespace(seconds=0.0, loss=self._value)

    def export_state(self):
        return {"epochs": self._epochs, "value": self._value}

    def load_state(self, state):
        self._epochs = int(state["epochs"])
        self._value = float(state["value"])

    def serve_output(self):
        return np.full((3, 2), self._value, dtype=np.float64)


def _fake_factory(gate: threading.Event | None = None):
    return lambda spec: (None, _FakeApp(spec, gate))


def _assert_accounting(stats):
    assert (
        stats["submitted"]
        == stats["completed"] + stats["failed"] + stats["cancelled"]
    ), stats


# ---------------------------------------------------------------------- #
# Manager: lifecycle, admission, cancel, requeue, drain/recover
# ---------------------------------------------------------------------- #
def test_manager_runs_a_job_to_completion_bitwise(tmp_path):
    spec = _spec(epochs=3)
    reference = run_training(spec).output
    manager = JobManager(tmp_path, max_active=1)
    try:
        job_id = manager.submit(spec)
        doc = manager.wait(job_id, timeout=120.0)
        assert doc["state"] == "completed"
        assert doc["epochs_done"] == 3
        assert len(doc["progress"]) == 3
        assert np.array_equal(manager.result(job_id), reference)
        stats = manager.stats()
        assert stats["completed"] == 1
        assert stats["checkpoints_written"] >= 3
        _assert_accounting(stats)
    finally:
        manager.close()


def test_manager_admission_control_and_draining(tmp_path):
    gate = threading.Event()
    manager = JobManager(
        tmp_path, max_active=1, max_queue=1, app_factory=_fake_factory(gate)
    )
    try:
        first = manager.submit(_spec(epochs=1))
        second = manager.submit(_spec(epochs=1))  # queued
        with pytest.raises(QueueFullError):
            manager.submit(_spec(epochs=1))  # 429 past the bound
        gate.set()
        manager.wait(first, timeout=60.0)
        manager.wait(second, timeout=60.0)
        _assert_accounting(manager.stats())
    finally:
        manager.close()
    with pytest.raises(DrainingError):
        manager.submit(_spec(epochs=1))  # 503 after drain


def test_manager_rejects_duplicate_live_ids_and_unknown_ids(tmp_path):
    gate = threading.Event()
    manager = JobManager(tmp_path, max_active=1, app_factory=_fake_factory(gate))
    try:
        manager.submit(_spec(epochs=1), job_id="job-dup")
        with pytest.raises(JobError):
            manager.submit(_spec(epochs=1), job_id="job-dup")
        with pytest.raises(JobNotFoundError):
            manager.status("job-nope")
        # JobNotFoundError doubles as KeyError for dict-like call sites.
        assert issubclass(JobNotFoundError, KeyError)
        gate.set()
        manager.wait("job-dup", timeout=60.0)
    finally:
        manager.close()


def test_manager_cancel_running_job_checkpoints_and_accounts(tmp_path):
    gate = threading.Event()
    manager = JobManager(tmp_path, max_active=1, app_factory=_fake_factory(gate))
    try:
        job_id = manager.submit(_spec(epochs=50))
        deadline = time.monotonic() + 30.0
        while manager.status(job_id)["state"] != "running":
            assert time.monotonic() < deadline
            time.sleep(0.01)
        doc = manager.cancel(job_id)
        assert doc["state"] in ("running", "cancelled")
        gate.set()  # let the epoch finish; the boundary sees the cancel
        doc = manager.wait(job_id, timeout=60.0)
        assert doc["state"] == "cancelled"
        assert manager.cancel(job_id)["state"] == "cancelled"  # idempotent
        with pytest.raises(JobError):
            manager.result(job_id)
        _assert_accounting(manager.stats())
    finally:
        manager.close()


def test_manager_requeues_crashed_job_and_result_stays_bitwise(tmp_path):
    spec = _spec(epochs=4)
    reference = run_training(spec).output
    manager = JobManager(tmp_path, max_active=1, fault_spec="crash@2")
    try:
        job_id = manager.submit(spec)
        doc = manager.wait(job_id, timeout=120.0)
        assert doc["state"] == "completed"
        assert doc["attempts"] == 2  # first attempt crashed at epoch 2
        assert doc["resumed_from"] is not None  # resumed mid-schedule
        assert np.array_equal(manager.result(job_id), reference)
        stats = manager.stats()
        assert stats["requeued"] == 1
        _assert_accounting(stats)
    finally:
        manager.close()


def test_manager_fails_job_when_retry_budget_is_spent(tmp_path):
    manager = JobManager(tmp_path, max_active=1, fault_spec="crash@1+")
    try:
        job_id = manager.submit(_spec(epochs=2))
        doc = manager.wait(job_id, timeout=120.0)
        assert doc["state"] == "failed"
        assert "injected fault" in doc["error"]
        stats = manager.stats()
        assert stats["failed"] == 1
        assert stats["requeued"] >= 1
        _assert_accounting(stats)
    finally:
        manager.close()


def test_manager_drain_then_recover_resumes_bitwise(tmp_path):
    spec = _spec(epochs=6)
    reference = run_training(spec).output

    gate = threading.Event()
    real_build = build_app

    def slow_factory(s):
        graph, app = real_build(s)
        original = app.train_epoch

        def gated(epoch):
            gate.wait(timeout=30.0)
            return original(epoch)

        app.train_epoch = gated
        return graph, app

    first = JobManager(tmp_path, max_active=1, app_factory=slow_factory)
    job_id = first.submit(spec)
    deadline = time.monotonic() + 30.0
    while first.status(job_id)["state"] != "running":
        assert time.monotonic() < deadline
        time.sleep(0.01)
    drainer = threading.Thread(target=first.drain)
    drainer.start()
    gate.set()  # the epoch boundary sees _draining and stops
    drainer.join(timeout=60.0)
    assert not drainer.is_alive()
    stopped = first.status(job_id)
    assert stopped["state"] == "pending"  # resumable, on disk

    second = JobManager(tmp_path, max_active=1)
    try:
        assert second.recover() == [job_id]
        doc = second.wait(job_id, timeout=120.0)
        assert doc["state"] == "completed"
        assert np.array_equal(second.result(job_id), reference)
        _assert_accounting(second.stats())
    finally:
        second.close()


def test_recover_keeps_terminal_jobs_queryable(tmp_path):
    spec = _spec(epochs=2)
    first = JobManager(tmp_path, max_active=1)
    job_id = first.submit(spec)
    first.wait(job_id, timeout=120.0)
    result = first.result(job_id)
    first.drain()

    second = JobManager(tmp_path, max_active=1)
    try:
        assert second.recover() == []  # nothing to requeue
        assert second.status(job_id)["state"] == "completed"
        assert np.array_equal(second.result(job_id), result)  # from disk
        assert second.stats()["submitted"] == 0  # read-only reload
    finally:
        second.close()


# ---------------------------------------------------------------------- #
# Serving surface: HTTP + wire
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def jobs_server():
    from repro.serve import ServeConfig
    from repro.serve.runner import BackgroundServer

    config = ServeConfig(
        port=0, wire_port=0, models=(), max_jobs=1, max_job_queue=4
    )
    with BackgroundServer(config) as bg:
        yield bg


def _tiny_train_doc(**overrides):
    doc = dict(
        app="force2vec", dataset="cora", scale=0.05, dim=8, epochs=2, seed=9
    )
    doc.update(overrides)
    return doc


def _poll_done(client, job_id, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        doc = client.job(job_id)
        if doc["state"] in ("completed", "failed", "cancelled"):
            return doc
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never finished")


def test_http_train_job_lifecycle(jobs_server):
    from repro.serve import ServeClient

    doc = _tiny_train_doc()
    reference = run_training(JobSpec.from_dict(doc)).output
    with ServeClient("127.0.0.1", jobs_server.port, timeout=30.0) as client:
        submitted = client.train(**doc)
        job_id = submitted["job_id"]
        assert submitted["state"] == "pending"

        final = _poll_done(client, job_id)
        assert final["state"] == "completed"
        assert final["epochs_done"] == 2
        assert [p["epoch"] for p in final["progress"]] == [0, 1]

        result = client.job_result(job_id)
        assert result.dtype == reference.dtype
        assert np.array_equal(result, reference)

        assert any(j["id"] == job_id for j in client.jobs())
        stats = client.statz()["jobs"]
        assert stats["completed"] >= 1
        _assert_accounting(stats)


def test_http_train_rejects_bad_specs_and_unknown_ids(jobs_server):
    from repro.serve import ServeClient, ServeHTTPError

    with ServeClient("127.0.0.1", jobs_server.port, timeout=30.0) as client:
        with pytest.raises(ServeHTTPError) as excinfo:
            client.train(**_tiny_train_doc(app="word2vec"))
        assert excinfo.value.status == 400
        with pytest.raises(ServeHTTPError) as excinfo:
            client.job("job-does-not-exist")
        assert excinfo.value.status == 404
        with pytest.raises(ServeHTTPError) as excinfo:
            client.job_result("job-does-not-exist")
        assert excinfo.value.status == 404


def test_http_cancel_job(jobs_server):
    from repro.serve import ServeClient

    with ServeClient("127.0.0.1", jobs_server.port, timeout=30.0) as client:
        job_id = client.train(**_tiny_train_doc(epochs=200, scale=0.2))["job_id"]
        doc = client.cancel_job(job_id)
        assert doc["state"] in ("pending", "running", "cancelled")
        final = _poll_done(client, job_id)
        assert final["state"] == "cancelled"


def test_wire_train_parity_with_http(jobs_server):
    from repro.serve import WireClient

    doc = _tiny_train_doc(seed=17)
    reference = run_training(JobSpec.from_dict(doc)).output
    with WireClient("127.0.0.1", jobs_server.wire_port, timeout=30.0) as client:
        job_id = client.train(**doc)["job_id"]
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            status = client.job(job_id)
            if status["state"] in ("completed", "failed", "cancelled"):
                break
            time.sleep(0.02)
        assert status["state"] == "completed"
        assert np.array_equal(client.job_result(job_id), reference)
        assert any(j["id"] == job_id for j in client.jobs())

        from repro.errors import ServeError

        with pytest.raises(ServeError) as excinfo:
            client.job("job-does-not-exist")
        assert excinfo.value.http_status == 404
