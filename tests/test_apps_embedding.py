"""Unit tests for the embedding applications (Force2Vec, VERSE, sampling,
classification)."""

import numpy as np
import pytest

from repro.apps import (
    EMBEDDING_BACKENDS,
    Force2Vec,
    Force2VecConfig,
    LogisticRegressionClassifier,
    NegativeSampler,
    Verse,
    VerseConfig,
    accuracy,
    evaluate_embeddings,
    f1_macro,
    f1_micro,
    minibatch_indices,
    train_test_split_indices,
)
from repro.errors import BackendError, ShapeError
from repro.graphs import Graph
from repro.graphs.generators import stochastic_block_model
from repro.sparse import random_csr


@pytest.fixture(scope="module")
def community_graph():
    """A small, strongly clustered graph whose embedding is learnable."""
    A, labels = stochastic_block_model(240, num_blocks=3, avg_degree=10, intra_fraction=0.95, seed=1)
    return Graph(A, labels=labels, name="sbm")


# ------------------------------------------------------------------ #
# Sampling utilities
# ------------------------------------------------------------------ #
def test_minibatch_indices_cover_all_vertices():
    batches = list(minibatch_indices(103, 25, seed=0))
    all_ids = np.concatenate(batches)
    assert sorted(all_ids.tolist()) == list(range(103))
    assert all(len(b) <= 25 for b in batches)


def test_minibatch_indices_drop_last():
    batches = list(minibatch_indices(103, 25, seed=0, drop_last=True))
    assert all(len(b) == 25 for b in batches)


def test_minibatch_indices_no_shuffle_is_ordered():
    batches = list(minibatch_indices(10, 4, shuffle=False))
    assert list(batches[0]) == [0, 1, 2, 3]


def test_minibatch_indices_validation():
    with pytest.raises(ShapeError):
        list(minibatch_indices(10, 0))
    with pytest.raises(ShapeError):
        list(minibatch_indices(-1, 5))


def test_negative_sampler_uniform_and_biased():
    uniform = NegativeSampler(50, seed=0)
    out = uniform.sample((4, 3))
    assert out.shape == (4, 3)
    assert out.min() >= 0 and out.max() < 50

    degrees = np.zeros(50)
    degrees[7] = 1000.0  # heavily bias towards vertex 7
    biased = NegativeSampler(50, degrees=degrees, seed=0)
    samples = biased.sample(500)
    assert (samples == 7).mean() > 0.5


def test_negative_sampler_validation():
    with pytest.raises(ShapeError):
        NegativeSampler(0)
    with pytest.raises(ShapeError):
        NegativeSampler(10, degrees=np.ones(3))


# ------------------------------------------------------------------ #
# Classification / metrics
# ------------------------------------------------------------------ #
def test_f1_and_accuracy_perfect_and_empty():
    y = np.array([0, 1, 2, 1])
    assert f1_micro(y, y) == 1.0
    assert f1_macro(y, y) == 1.0
    assert accuracy(y, y) == 1.0
    assert f1_micro(np.array([]), np.array([])) == 0.0


def test_f1_micro_equals_accuracy_single_label():
    y_true = np.array([0, 1, 2, 2, 1, 0])
    y_pred = np.array([0, 2, 2, 1, 1, 0])
    assert f1_micro(y_true, y_pred) == pytest.approx(accuracy(y_true, y_pred))


def test_f1_shape_mismatch():
    with pytest.raises(ShapeError):
        f1_micro(np.array([0, 1]), np.array([0]))


def test_logistic_regression_learns_separable_data():
    rng = np.random.default_rng(0)
    X = np.concatenate([rng.normal(i * 3, 0.5, size=(60, 4)) for i in range(3)])
    y = np.repeat(np.arange(3), 60)
    clf = LogisticRegressionClassifier(epochs=200, learning_rate=0.5, seed=0)
    clf.fit(X, y)
    assert accuracy(y, clf.predict(X)) > 0.95
    probs = clf.predict_proba(X)
    assert np.allclose(probs.sum(axis=1), 1.0, atol=1e-6)


def test_logistic_regression_unfitted_raises():
    clf = LogisticRegressionClassifier()
    with pytest.raises(RuntimeError):
        clf.predict(np.ones((2, 3)))


def test_train_test_split_partition():
    train, test = train_test_split_indices(100, 0.6, seed=1)
    assert len(train) == 60 and len(test) == 40
    assert set(train).isdisjoint(test)
    with pytest.raises(ShapeError):
        train_test_split_indices(10, 1.5)


def test_evaluate_embeddings_protocol():
    rng = np.random.default_rng(0)
    emb = np.concatenate([rng.normal(i * 4, 0.5, size=(50, 8)) for i in range(2)])
    labels = np.repeat(np.arange(2), 50)
    metrics = evaluate_embeddings(emb, labels, seed=0)
    assert metrics["f1_micro"] > 0.9
    assert metrics["num_train"] + metrics["num_test"] == 100


# ------------------------------------------------------------------ #
# Force2Vec
# ------------------------------------------------------------------ #
def test_force2vec_config_validation():
    with pytest.raises(BackendError):
        Force2VecConfig(backend="tensorflow")
    with pytest.raises(ShapeError):
        Force2VecConfig(dim=0)
    with pytest.raises(ShapeError):
        Force2VecConfig(negative_samples=-1)
    assert set(EMBEDDING_BACKENDS) >= {"fused", "unfused", "dense"}


def test_force2vec_requires_square_adjacency():
    A = random_csr(10, 20, density=0.2, seed=0)
    with pytest.raises(ShapeError):
        Force2Vec(Graph(A))


def test_force2vec_training_reduces_loss(community_graph):
    cfg = Force2VecConfig(dim=16, epochs=6, learning_rate=0.1, seed=0, batch_size=64)
    model = Force2Vec(community_graph, cfg)
    loss_before = model.loss_estimate(seed=1)
    model.train()
    loss_after = model.loss_estimate(seed=1)
    assert loss_after < loss_before
    assert len(model.history) == 6
    assert model.average_epoch_seconds() > 0


def test_force2vec_embeddings_cluster_by_community(community_graph):
    cfg = Force2VecConfig(dim=32, epochs=15, learning_rate=0.1, seed=0, batch_size=64)
    model = Force2Vec(community_graph, cfg)
    emb = model.train()
    metrics = evaluate_embeddings(emb, community_graph.labels, seed=0)
    assert metrics["f1_micro"] > 0.6


def test_force2vec_backends_agree_from_same_seed(community_graph):
    embeddings = {}
    for backend in ["fused", "unfused"]:
        cfg = Force2VecConfig(dim=8, epochs=2, seed=3, backend=backend, batch_size=64)
        embeddings[backend] = Force2Vec(community_graph, cfg).train()
    assert np.allclose(embeddings["fused"], embeddings["unfused"], atol=1e-3)


def test_force2vec_zero_negative_samples(community_graph):
    cfg = Force2VecConfig(dim=8, epochs=1, seed=0, negative_samples=0, batch_size=64)
    emb = Force2Vec(community_graph, cfg).train()
    assert np.isfinite(emb).all()


def test_force2vec_callback_invoked(community_graph):
    seen = []
    cfg = Force2VecConfig(dim=8, epochs=2, seed=0, batch_size=128)
    Force2Vec(community_graph, cfg).train(callback=lambda s: seen.append(s.epoch))
    assert seen == [0, 1]


# ------------------------------------------------------------------ #
# VERSE
# ------------------------------------------------------------------ #
def test_verse_config_validation():
    with pytest.raises(ShapeError):
        VerseConfig(dim=0)
    with pytest.raises(ShapeError):
        VerseConfig(noise_samples=-2)


def test_verse_training_runs_and_is_finite(community_graph):
    cfg = VerseConfig(dim=16, epochs=2, seed=0, batch_size=64)
    model = Verse(community_graph, cfg)
    emb = model.train()
    assert emb.shape == (community_graph.num_vertices, 16)
    assert np.isfinite(emb).all()
    assert len(model.history) == 2


def test_verse_requires_square_adjacency():
    A = random_csr(10, 20, density=0.2, seed=0)
    with pytest.raises(ShapeError):
        Verse(Graph(A))
