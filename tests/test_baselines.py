"""Unit tests for the DGL-style, dense and vendor baselines."""

import numpy as np
import pytest

from repro.baselines import (
    InspectorExecutorSpMM,
    SDDMMResult,
    dense_fusedmm,
    dense_sigmoid_embedding,
    dense_spmm,
    gspmm,
    needs_vector_messages,
    scipy_available,
    sddmm,
    unfused_fusedmm,
    unfused_memory_bytes,
    vendor_spmm,
)
from repro.core import fusedmm, get_pattern, spmm_kernel
from repro.errors import BackendError
from repro.sparse import random_csr
from _helpers import make_xy


@pytest.fixture(scope="module")
def problem():
    A = random_csr(70, 70, density=0.08, seed=21)
    X, Y = make_xy(A, 12, seed=2)
    return A, X, Y


# ------------------------------------------------------------------ #
# SDDMM
# ------------------------------------------------------------------ #
def test_sddmm_scalar_messages_match_dot_products(problem):
    A, X, Y = problem
    result = sddmm(A, X, Y, pattern="sigmoid_embedding")
    assert result.is_scalar
    assert result.messages.shape == (A.nnz,)
    # Messages must equal sigmoid(x_u . y_v) for every edge.
    rows = np.repeat(np.arange(A.nrows), A.row_degrees())
    scores = np.einsum("ij,ij->i", X[rows], Y[A.indices])
    assert np.allclose(result.messages, 1.0 / (1.0 + np.exp(-scores)), atol=1e-4)


def test_sddmm_vector_messages_for_fr(problem):
    A, X, Y = problem
    result = sddmm(A, X, Y, pattern="fr_layout", include_mop=True)
    assert not result.is_scalar
    assert result.messages.shape == (A.nnz, X.shape[1])
    assert result.message_dim == X.shape[1]


def test_sddmm_memory_accounting(problem):
    A, X, Y = problem
    scalar = sddmm(A, X, Y, pattern="sigmoid_embedding")
    vector = sddmm(A, X, Y, pattern="fr_layout", include_mop=True)
    assert vector.memory_bytes() == scalar.memory_bytes() * X.shape[1]


def test_sddmm_result_to_csr(problem):
    A, X, Y = problem
    scalar = sddmm(A, X, Y, pattern="sigmoid_embedding")
    H = scalar.to_csr()
    assert H.shape == A.shape
    assert H.nnz == A.nnz
    vector = sddmm(A, X, Y, pattern="fr_layout", include_mop=True)
    with pytest.raises(ValueError):
        vector.to_csr()


def test_sddmm_block_size_invariance(problem):
    A, X, Y = problem
    a = sddmm(A, X, Y, pattern="sigmoid_embedding", block_size=7).messages
    b = sddmm(A, X, Y, pattern="sigmoid_embedding", block_size=10**6).messages
    assert np.allclose(a, b, atol=1e-5)


# ------------------------------------------------------------------ #
# gSpMM
# ------------------------------------------------------------------ #
def test_gspmm_requires_matching_y(problem):
    A, X, Y = problem
    H = sddmm(A, X, Y, pattern="sigmoid_embedding")
    with pytest.raises(ValueError):
        gspmm(H, Y[:10], pattern="sigmoid_embedding")


def test_gspmm_with_precomputed_edge_weights(problem):
    A, X, Y = problem
    H = SDDMMResult(A=A, messages=A.data.copy())
    Z = gspmm(H, Y, pattern=get_pattern(None, vop="NOOP", mop="MUL", aop="ASUM"))
    assert np.allclose(Z, spmm_kernel(A, Y), atol=1e-4)


# ------------------------------------------------------------------ #
# Unfused pipeline
# ------------------------------------------------------------------ #
def test_unfused_matches_fused_all_patterns(problem):
    A, X, Y = problem
    for pattern in ["sigmoid_embedding", "fr_layout", "gcn", "sddmm_dot"]:
        fused = fusedmm(A, X, Y, pattern=pattern)
        unfused = unfused_fusedmm(A, X, Y, pattern=pattern)
        assert np.allclose(fused, unfused, atol=1e-3), pattern


def test_unfused_details_report_intermediate(problem):
    A, X, Y = problem
    scalar = unfused_fusedmm(A, X, Y, pattern="sigmoid_embedding", return_details=True)
    vector = unfused_fusedmm(A, X, Y, pattern="fr_layout", return_details=True)
    assert scalar.message_dim == 1
    assert vector.message_dim == X.shape[1]
    assert vector.intermediate_bytes > scalar.intermediate_bytes


def test_needs_vector_messages_classification():
    assert needs_vector_messages(get_pattern("fr_layout").resolved())
    assert not needs_vector_messages(get_pattern("sigmoid_embedding").resolved())
    assert not needs_vector_messages(get_pattern("gcn").resolved())


def test_unfused_memory_model_grows_with_d(problem):
    A, _, _ = problem
    m16 = unfused_memory_bytes(A, 16, pattern="fr_layout")
    m128 = unfused_memory_bytes(A, 128, pattern="fr_layout")
    assert m128 > m16
    # Scalar-message patterns grow only through the dense operands.
    s16 = unfused_memory_bytes(A, 16, pattern="sigmoid_embedding")
    s128 = unfused_memory_bytes(A, 128, pattern="sigmoid_embedding")
    assert (m128 - m16) > (s128 - s16)


# ------------------------------------------------------------------ #
# Dense baseline
# ------------------------------------------------------------------ #
def test_dense_sigmoid_embedding_matches_fused(problem):
    A, X, Y = problem
    assert np.allclose(
        dense_sigmoid_embedding(A, X, Y),
        fusedmm(A, X, Y, pattern="sigmoid_embedding"),
        atol=1e-3,
    )


def test_dense_spmm_matches_reference(problem):
    A, X, Y = problem
    assert np.allclose(dense_spmm(A, Y), A.spmm(Y), atol=1e-4)


def test_dense_fusedmm_dispatch(problem):
    A, X, Y = problem
    assert np.allclose(
        dense_fusedmm(A, X, Y, pattern="gcn"), fusedmm(A, X, Y, pattern="gcn"), atol=1e-3
    )
    # Unknown-to-dense patterns fall back to the generic reference.
    assert np.allclose(
        dense_fusedmm(A, X, Y, pattern="sddmm_dot"),
        fusedmm(A, X, Y, pattern="sddmm_dot"),
        atol=1e-3,
    )


def test_dense_size_guard():
    A = random_csr(200, 200, density=0.01, seed=0)
    X, Y = make_xy(A, 4, seed=0)
    with pytest.raises(BackendError):
        dense_sigmoid_embedding(A, X, Y, max_dense_elements=100)


# ------------------------------------------------------------------ #
# Vendor (MKL-like) SpMM
# ------------------------------------------------------------------ #
def test_vendor_spmm_matches_fused_spmm(problem):
    if not scipy_available():
        pytest.skip("SciPy unavailable")
    A, X, Y = problem
    assert np.allclose(vendor_spmm(A, Y), spmm_kernel(A, Y), atol=1e-4)


def test_inspector_executor(problem):
    if not scipy_available():
        pytest.skip("SciPy unavailable")
    A, X, Y = problem
    handle = InspectorExecutorSpMM(A)
    assert handle.inspection_bytes > 0
    assert np.allclose(handle(Y), vendor_spmm(A, Y), atol=1e-6)
    with pytest.raises(ValueError):
        handle(Y[:3])


def test_vendor_spmm_shape_check(problem):
    if not scipy_available():
        pytest.skip("SciPy unavailable")
    A, X, Y = problem
    with pytest.raises(ValueError):
        vendor_spmm(A, Y[: A.ncols - 1])
