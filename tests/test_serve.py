"""Tests for the async serving subsystem (:mod:`repro.serve`).

The load-bearing contract: **coalesced responses are bitwise identical to
the same requests executed serially** — asserted here at the coalescer
level (hypothesis, mixed patterns/dtypes, concurrent tasks) and over real
HTTP sockets.  Admission control (queue-full 429, deadline 504, draining
503) and graceful drain are exercised deterministically.
"""

from __future__ import annotations

import asyncio
import json
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fused import fusedmm
from repro.errors import DeadlineError, DrainingError, QueueFullError, ShapeError
from repro.graphs import random_features
from repro.runtime import KernelRequest, KernelRuntime
from repro.runtime.aio import run_batch_async, submit_sharded_async, wrap_runtime_future
from repro.serve import (
    Coalescer,
    KernelServer,
    ModelRegistry,
    ModelSpec,
    ProtocolError,
    ServeClient,
    ServeConfig,
    ServeHTTPError,
    array_from_npy,
    decode_array,
    encode_array,
    npy_bytes,
)
from repro.serve.protocol import HTTPRequest, read_http_request, write_http_response
from repro.serve.runner import BackgroundServer
from repro.sparse import random_csr

from _helpers import make_xy


def _mk_problem(n: int, d: int, seed: int, dtype=np.float32):
    A = random_csr(n, n, density=min(1.0, 4.0 / max(n, 1)), seed=seed)
    X, Y = make_xy(A, d, seed=seed)
    return A, X.astype(dtype), Y.astype(dtype)


# ---------------------------------------------------------------------- #
# Payload codecs + HTTP parsing
# ---------------------------------------------------------------------- #
class TestProtocol:
    def test_npy_round_trip_bitwise(self, rng):
        for dtype in (np.float32, np.float64, np.int64):
            arr = rng.normal(size=(7, 3)).astype(dtype)
            out = array_from_npy(npy_bytes(arr))
            assert out.dtype == arr.dtype
            np.testing.assert_array_equal(out, arr)

    def test_encode_decode_json_and_b64(self, rng):
        arr = rng.normal(size=(4, 2)).astype(np.float32)
        out = decode_array(encode_array(arr))
        np.testing.assert_array_equal(out, arr)
        out_b = decode_array(encode_array(arr, binary=True))
        assert out_b.dtype == arr.dtype
        np.testing.assert_array_equal(out_b, arr)
        np.testing.assert_array_equal(
            decode_array([[1.0, 2.0]], dtype=np.float32),
            np.asarray([[1.0, 2.0]], dtype=np.float32),
        )

    def test_decode_array_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            decode_array("nope")
        with pytest.raises(ProtocolError):
            decode_array({"wrong": 1})
        with pytest.raises(ProtocolError):
            decode_array({"npy_b64": "!!notb64!!"})
        with pytest.raises(ProtocolError):
            array_from_npy(b"not an npy payload")

    def _parse(self, raw: bytes, **kwargs) -> HTTPRequest:
        async def _run():
            reader = asyncio.StreamReader()
            reader.feed_data(raw)
            reader.feed_eof()
            return await read_http_request(reader, **kwargs)

        return asyncio.run(_run())

    def test_parse_request_with_body_and_query(self):
        raw = (
            b"POST /v1/kernel?model=m&pattern=gcn HTTP/1.1\r\n"
            b"Content-Type: application/json\r\nContent-Length: 2\r\n\r\n{}"
        )
        req = self._parse(raw)
        assert req.method == "POST"
        assert req.path == "/v1/kernel"
        assert req.query == {"model": "m", "pattern": "gcn"}
        assert req.json() == {}
        assert req.keep_alive

    def test_parse_eof_and_malformed(self):
        assert self._parse(b"") is None
        with pytest.raises(ProtocolError):
            self._parse(b"BROKEN\r\n\r\n")
        with pytest.raises(ProtocolError):
            self._parse(b"GET / HTTP/1.1\r\nbadheader\r\n\r\n")

    def test_http_10_defaults_to_close(self):
        """HTTP/1.0 without ``Connection: keep-alive`` is one-shot: a 1.0
        client reads until EOF, so holding the connection open hangs it on
        a response the server considers complete."""
        req = self._parse(b"GET /healthz HTTP/1.0\r\n\r\n")
        assert req.version == "HTTP/1.0"
        assert not req.keep_alive
        req = self._parse(
            b"GET /healthz HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"
        )
        assert req.keep_alive
        # 1.1 keeps its defaults: persistent unless told otherwise.
        req = self._parse(b"GET /healthz HTTP/1.1\r\n\r\n")
        assert req.version == "HTTP/1.1"
        assert req.keep_alive
        req = self._parse(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not req.keep_alive

    def test_parse_body_cap(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n" + b"x" * 100
        with pytest.raises(ProtocolError) as exc:
            self._parse(raw, max_body_bytes=10)
        assert exc.value.status == 413

    def test_write_response_shape(self):
        class Writer:
            def __init__(self):
                self.blob = b""

            def write(self, data):
                self.blob += data

        w = Writer()
        write_http_response(w, 200, b'{"ok":1}', keep_alive=False)
        head, _, body = w.blob.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK")
        assert b"Content-Length: 8" in head
        assert b"Connection: close" in head
        assert body == b'{"ok":1}'


# ---------------------------------------------------------------------- #
# Coalescer: bitwise identity under concurrency
# ---------------------------------------------------------------------- #
class TestCoalescerIdentity:
    @settings(max_examples=10, deadline=None)
    @given(
        seeds=st.lists(st.integers(0, 6), min_size=2, max_size=10),
        patterns=st.lists(
            st.sampled_from(["sigmoid_embedding", "gcn", "fr_layout", "spmm"]),
            min_size=1,
            max_size=4,
        ),
        dtype=st.sampled_from([np.float32, np.float64]),
        max_batch=st.sampled_from([1, 3, 32]),
    )
    def test_concurrent_mixed_bitwise_identical_to_serial(
        self, seeds, patterns, dtype, max_batch
    ):
        """N concurrent client tasks with mixed patterns/dtypes receive
        exactly the bytes serial single-threaded execution produces."""
        runtime = KernelRuntime(num_threads=1)
        problems = []
        for i, seed in enumerate(seeds):
            pattern = patterns[i % len(patterns)]
            A, X, Y = _mk_problem(20 + 7 * seed, 4, seed, dtype)
            expected = fusedmm(A, X, Y, pattern=pattern)
            problems.append((A, X, Y, pattern, expected))

        async def _go():
            coalescer = Coalescer(
                runtime, max_batch=max_batch, max_wait_ms=2.0, idle_flush_ms=0.1
            )
            try:
                results = await asyncio.gather(
                    *(
                        coalescer.submit(
                            KernelRequest(A=A, X=X, Y=Y, pattern=pattern)
                        )
                        for A, X, Y, pattern, _ in problems
                    )
                )
                await coalescer.drain()
                return results, coalescer.stats.as_dict()
            finally:
                coalescer.close()

        results, stats = asyncio.run(_go())
        runtime.close()
        for (A, X, Y, pattern, expected), Z in zip(problems, results):
            np.testing.assert_array_equal(Z, expected)
            assert Z.dtype == expected.dtype
        # Every admitted request reaches exactly one terminal state.
        assert stats["submitted"] == (
            stats["completed"]
            + stats["failed"]
            + stats["cancelled"]
            + stats["rejected_queue_full"]
            + stats["rejected_draining"]
        )

    def test_windows_actually_form(self):
        runtime = KernelRuntime(num_threads=1)
        A, X, Y = _mk_problem(30, 4, 0)

        async def _go():
            coalescer = Coalescer(runtime, max_batch=16, max_wait_ms=50.0)
            try:
                await asyncio.gather(
                    *(
                        coalescer.submit(KernelRequest(A=A, X=X, Y=Y))
                        for _ in range(8)
                    )
                )
                return coalescer.stats.as_dict()
            finally:
                coalescer.close()

        stats = asyncio.run(_go())
        runtime.close()
        assert stats["submitted"] == 8
        assert stats["completed"] == 8
        # All 8 arrived before any flush timer fired → far fewer windows
        # than requests, and occupancy reflects the coalescing.
        assert stats["batches"] < 8
        assert stats["mean_window_occupancy"] > 1.0
        assert stats["wait_ms_p99"] >= stats["wait_ms_p50"] >= 0.0

    def test_max_batch_flushes_immediately(self):
        runtime = KernelRuntime(num_threads=1)
        A, X, Y = _mk_problem(30, 4, 0)

        async def _go():
            coalescer = Coalescer(
                runtime, max_batch=2, max_wait_ms=10_000.0, idle_flush_ms=0.0
            )
            try:
                await asyncio.wait_for(
                    asyncio.gather(
                        *(
                            coalescer.submit(KernelRequest(A=A, X=X, Y=Y))
                            for _ in range(4)
                        )
                    ),
                    timeout=30,
                )
                return coalescer.stats.as_dict()
            finally:
                coalescer.close()

        stats = asyncio.run(_go())
        runtime.close()
        assert stats["batches"] == 2
        assert stats["mean_window_occupancy"] == 2.0

    def test_large_jobs_route_around_the_window(self):
        runtime = KernelRuntime(num_threads=1)
        A = random_csr(300, 300, density=0.2, seed=3)  # nnz >> threshold
        X, Y = make_xy(A, 4, seed=3)
        expected = fusedmm(A, X, Y, pattern="sigmoid_embedding")

        async def _go():
            coalescer = Coalescer(
                runtime, max_batch=8, max_wait_ms=10_000.0, shard_min_nnz=64
            )
            try:
                # A window-bound request would hang for 10s; the large
                # lane must dispatch immediately.
                Z = await asyncio.wait_for(
                    coalescer.submit(KernelRequest(A=A, X=X, Y=Y)), timeout=30
                )
                return Z, coalescer.stats.as_dict()
            finally:
                coalescer.close()

        Z, stats = asyncio.run(_go())
        runtime.close()
        np.testing.assert_array_equal(Z, expected)
        assert stats["sharded_requests"] == 1
        assert stats["batches"] == 0

    def test_shape_errors_surface_without_poisoning_the_window(self):
        runtime = KernelRuntime(num_threads=1)
        A, X, Y = _mk_problem(30, 4, 0)
        bad_X = np.zeros((7, 4), dtype=np.float32)  # wrong row count

        async def _go():
            coalescer = Coalescer(runtime, max_batch=8, max_wait_ms=2.0)
            try:
                good = coalescer.submit(KernelRequest(A=A, X=X, Y=Y))
                with pytest.raises(ShapeError):
                    await coalescer.submit(KernelRequest(A=A, X=bad_X, Y=Y))
                return await good
            finally:
                coalescer.close()

        Z = asyncio.run(_go())
        runtime.close()
        np.testing.assert_array_equal(Z, fusedmm(A, X, Y, pattern="sigmoid_embedding"))


# ---------------------------------------------------------------------- #
# Coalescer: admission control
# ---------------------------------------------------------------------- #
class TestAdmissionControl:
    def test_queue_full_rejects_with_429_error(self):
        runtime = KernelRuntime(num_threads=1)
        A, X, Y = _mk_problem(30, 4, 0)

        async def _go():
            coalescer = Coalescer(
                runtime,
                max_batch=64,
                max_wait_ms=10_000.0,
                idle_flush_ms=0.0,
                max_queue=2,
            )
            try:
                first = asyncio.ensure_future(
                    coalescer.submit(KernelRequest(A=A, X=X, Y=Y))
                )
                second = asyncio.ensure_future(
                    coalescer.submit(KernelRequest(A=A, X=X, Y=Y))
                )
                await asyncio.sleep(0)  # let both enter the window
                with pytest.raises(QueueFullError):
                    await coalescer.submit(KernelRequest(A=A, X=X, Y=Y))
                stats = coalescer.stats.as_dict()
                await coalescer.drain()  # flushes the two queued requests
                await asyncio.gather(first, second)
                return stats
            finally:
                coalescer.close()

        stats = asyncio.run(_go())
        runtime.close()
        assert stats["rejected_queue_full"] == 1
        assert QueueFullError.http_status == 429

    def test_deadline_expired_while_queued(self):
        runtime = KernelRuntime(num_threads=1)
        A, X, Y = _mk_problem(30, 4, 0)

        async def _go():
            coalescer = Coalescer(
                runtime, max_batch=64, max_wait_ms=30.0, idle_flush_ms=0.0
            )
            try:
                with pytest.raises(DeadlineError):
                    # The window flushes after 30ms; a 1ms deadline is
                    # long gone by then.
                    await coalescer.submit(
                        KernelRequest(A=A, X=X, Y=Y), deadline_ms=1.0
                    )
                return coalescer.stats.as_dict()
            finally:
                coalescer.close()

        stats = asyncio.run(_go())
        runtime.close()
        assert stats["expired_deadline"] == 1
        assert stats["completed"] == 0
        assert DeadlineError.http_status == 504

    def test_large_single_flood_respects_admission_bound(self):
        """Large singles must count against ``max_queue`` at admission
        time: a burst submitted concurrently may not overshoot the bound
        just because the execution tasks haven't started yet."""
        runtime = KernelRuntime(num_threads=1)
        A = random_csr(300, 300, density=0.2, seed=5)  # nnz >= threshold
        X, Y = make_xy(A, 4, seed=5)

        async def _go():
            coalescer = Coalescer(
                runtime,
                max_batch=8,
                max_wait_ms=2.0,
                shard_min_nnz=64,
                max_queue=2,
            )
            try:
                # All six admission checks run before any execution task
                # gets loop time — exactly the burst that overshoots if
                # the slot is counted inside the task.
                tasks = [
                    asyncio.ensure_future(
                        coalescer.submit(KernelRequest(A=A, X=X, Y=Y))
                    )
                    for _ in range(6)
                ]
                results = await asyncio.gather(*tasks, return_exceptions=True)
                await coalescer.drain()
                return results, coalescer.stats.as_dict()
            finally:
                coalescer.close()

        results, stats = asyncio.run(_go())
        runtime.close()
        rejected = [r for r in results if isinstance(r, QueueFullError)]
        completed = [r for r in results if isinstance(r, np.ndarray)]
        assert len(rejected) == 4
        assert len(completed) == 2
        assert stats["rejected_queue_full"] == 4
        expected = fusedmm(A, X, Y, pattern="sigmoid_embedding")
        for Z in completed:
            np.testing.assert_array_equal(Z, expected)

    def test_cancelled_while_queued_is_counted(self):
        """A client disconnecting while queued must land in ``cancelled``
        — neither silently skipped (stats drift) nor marked completed."""
        runtime = KernelRuntime(num_threads=1)
        A, X, Y = _mk_problem(30, 4, 0)

        async def _go():
            coalescer = Coalescer(
                runtime, max_batch=64, max_wait_ms=10_000.0, idle_flush_ms=0.0
            )
            try:
                keep = asyncio.ensure_future(
                    coalescer.submit(KernelRequest(A=A, X=X, Y=Y))
                )
                doomed = [
                    asyncio.ensure_future(
                        coalescer.submit(KernelRequest(A=A, X=X, Y=Y))
                    )
                    for _ in range(2)
                ]
                await asyncio.sleep(0)  # all three queued in the window
                for task in doomed:
                    task.cancel()
                await asyncio.gather(*doomed, return_exceptions=True)
                await coalescer.drain()
                await keep
                return coalescer.stats.as_dict()
            finally:
                coalescer.close()

        stats = asyncio.run(_go())
        runtime.close()
        assert stats["submitted"] == 3
        assert stats["completed"] == 1
        assert stats["cancelled"] == 2
        assert stats["submitted"] == (
            stats["completed"]
            + stats["failed"]
            + stats["cancelled"]
            + stats["rejected_queue_full"]
            + stats["rejected_draining"]
        )

    def test_drain_awaits_inflight_large_singles(self):
        """Graceful drain must wait for large-lane requests too, not just
        dispatched windows."""
        runtime = KernelRuntime(num_threads=1)
        A = random_csr(300, 300, density=0.2, seed=4)
        X, Y = make_xy(A, 4, seed=4)
        expected = fusedmm(A, X, Y, pattern="sigmoid_embedding")

        async def _go():
            coalescer = Coalescer(
                runtime, max_batch=8, max_wait_ms=2.0, shard_min_nnz=64
            )
            try:
                pending = asyncio.ensure_future(
                    coalescer.submit(KernelRequest(A=A, X=X, Y=Y))
                )
                await asyncio.sleep(0)  # let the large lane dispatch
                finished = await asyncio.wait_for(coalescer.drain(), timeout=30)
                assert pending.done()  # drain returned only after the work
                return finished, await pending
            finally:
                coalescer.close()

        finished, Z = asyncio.run(_go())
        runtime.close()
        assert finished is True
        np.testing.assert_array_equal(Z, expected)

    def test_graceful_drain(self):
        runtime = KernelRuntime(num_threads=1)
        A, X, Y = _mk_problem(30, 4, 0)
        expected = fusedmm(A, X, Y, pattern="sigmoid_embedding")

        async def _go():
            coalescer = Coalescer(
                runtime, max_batch=64, max_wait_ms=10_000.0, idle_flush_ms=0.0
            )
            try:
                pending = [
                    asyncio.ensure_future(
                        coalescer.submit(KernelRequest(A=A, X=X, Y=Y))
                    )
                    for _ in range(3)
                ]
                await asyncio.sleep(0)
                # Drain must flush the open window and finish the admitted
                # requests...
                finished = await asyncio.wait_for(coalescer.drain(), timeout=30)
                results = await asyncio.gather(*pending)
                # ...and reject everything arriving afterwards.
                with pytest.raises(DrainingError):
                    await coalescer.submit(KernelRequest(A=A, X=X, Y=Y))
                return finished, results, coalescer.stats.as_dict()
            finally:
                coalescer.close()

        finished, results, stats = asyncio.run(_go())
        runtime.close()
        assert finished is True
        for Z in results:
            np.testing.assert_array_equal(Z, expected)
        assert stats["rejected_draining"] == 1
        assert DrainingError.http_status == 503


# ---------------------------------------------------------------------- #
# The asyncio bridge in runtime/
# ---------------------------------------------------------------------- #
class TestAioBridge:
    def test_run_batch_async_matches_sync(self):
        runtime = KernelRuntime(num_threads=1)
        A, X, Y = _mk_problem(40, 4, 1)
        reqs = [KernelRequest(A=A, X=X, Y=Y) for _ in range(3)]
        expected = runtime.run_batch(reqs)
        results = asyncio.run(run_batch_async(runtime, reqs))
        for Z, E in zip(results, expected):
            np.testing.assert_array_equal(Z, E)
        runtime.close()

    def test_wrap_runtime_future_completed(self):
        runtime = KernelRuntime(num_threads=1)
        A, X, Y = _mk_problem(40, 4, 1)

        async def _go():
            return await wrap_runtime_future(runtime.submit(A, X, Y))

        Z = asyncio.run(_go())
        np.testing.assert_array_equal(Z, runtime.run(A, X, Y))
        runtime.close()

    def test_submit_sharded_async_fallback_without_workers(self):
        runtime = KernelRuntime(num_threads=1, processes=0)
        A, X, Y = _mk_problem(40, 4, 1)
        Z = asyncio.run(submit_sharded_async(runtime, A, X, Y))
        np.testing.assert_array_equal(Z, runtime.run(A, X, Y))
        runtime.close()


# ---------------------------------------------------------------------- #
# Config + registry
# ---------------------------------------------------------------------- #
class TestConfigAndRegistry:
    def test_serve_config_validation(self):
        with pytest.raises(ShapeError):
            ServeConfig(max_batch=0)
        with pytest.raises(ShapeError):
            ServeConfig(max_queue=0)
        with pytest.raises(ShapeError):
            ServeConfig(max_wait_ms=-1)
        with pytest.raises(ShapeError):
            ServeConfig(
                models=(
                    ModelSpec("dup", "cora"),
                    ModelSpec("dup", "pubmed"),
                )
            )

    def test_model_spec_validation(self):
        with pytest.raises(Exception):
            ModelSpec(name="bad/slash", dataset="cora")
        with pytest.raises(Exception):
            ModelSpec(name="x", dataset="cora", app="unknown")

    def test_registry_loads_all_four_apps(self):
        config = ServeConfig(
            port=0,
            models=(
                ModelSpec("f2v", "cora", app="force2vec", dim=8, scale=0.05),
                ModelSpec("verse", "cora", app="verse", dim=8, scale=0.05),
                ModelSpec("gcn", "cora", app="gcn", dim=8, scale=0.05),
                ModelSpec("layout", "cora", app="fr_layout", dim=2, scale=0.05),
            ),
        )
        registry = ModelRegistry(config).load()
        try:
            assert registry.model_names() == ["f2v", "gcn", "layout", "verse"]
            for name in registry.model_names():
                model = registry.model(name)
                out = registry.embeddings(name)
                assert out.shape[0] == model.graph.num_vertices
                rows = registry.embeddings(name, np.asarray([0, 1]))
                np.testing.assert_array_equal(rows, out[:2])
            # Warm plans exist for the registered graphs.
            assert registry.runtime.cache_stats().size > 0
            with pytest.raises(Exception):
                registry.model("missing")
            with pytest.raises(Exception):
                registry.embeddings("f2v", np.asarray([10**9]))
        finally:
            registry.close()

    def test_apps_expose_serve_output(self):
        # The uniform lookup surface the registry reads; shapes per app.
        config = ServeConfig(
            port=0, models=(ModelSpec("m", "cora", app="force2vec", dim=4, scale=0.05),)
        )
        graph, app = config.models[0].build(config)
        out = app.serve_output()
        assert out.shape == (graph.num_vertices, 4)
        assert out.dtype == np.float32


# ---------------------------------------------------------------------- #
# HTTP end to end
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def live_server():
    config = ServeConfig(
        port=0,
        models=(ModelSpec("tiny", "cora", app="force2vec", dim=8, scale=0.05),),
        max_batch=8,
        max_wait_ms=2.0,
    )
    with BackgroundServer(config) as bg:
        yield bg


class TestHTTPEndToEnd:
    def test_healthz_and_statz(self, live_server):
        with ServeClient(live_server.host, live_server.port) as client:
            assert client.healthz()["status"] == "ok"
            stats = client.statz()
            assert stats["draining"] is False
            assert [m["name"] for m in stats["models"]] == ["tiny"]
            assert "coalescer" in stats and "runtime" in stats
            assert 0.0 <= stats["plan_cache_hit_rate"] <= 1.0

    def test_kernel_inline_graph_bitwise(self, live_server):
        A, X, Y = _mk_problem(50, 4, 7)
        expected = fusedmm(A, X, Y, pattern="sigmoid_embedding")
        with ServeClient(live_server.host, live_server.port) as client:
            for binary in (True, False):
                Z = client.kernel(
                    graph=A, X=X, Y=Y, pattern="sigmoid_embedding", binary=binary
                )
                if binary:
                    np.testing.assert_array_equal(Z, expected)  # bitwise
                else:
                    np.testing.assert_allclose(Z, expected, rtol=1e-6)

    def test_kernel_registered_graph_and_npy_fast_path(self, live_server):
        registry = live_server.server.registry
        A = registry.graph("tiny")
        X = random_features(A.nrows, 8, seed=9)
        expected = fusedmm(A, X, X, pattern="gcn")
        with ServeClient(live_server.host, live_server.port) as client:
            Z = client.kernel_npy(X, model="tiny", pattern="gcn")
            np.testing.assert_array_equal(Z, expected)

    def test_embed_lookup(self, live_server):
        with ServeClient(live_server.host, live_server.port) as client:
            rows = client.embed("tiny", [0, 3, 5])
            assert rows.shape == (3, 8)
            full = client.embed("tiny")
            np.testing.assert_array_equal(rows, full[[0, 3, 5]])

    def test_error_statuses(self, live_server):
        with ServeClient(live_server.host, live_server.port) as client:
            with pytest.raises(ServeHTTPError) as exc:
                client.embed("missing-model")
            assert exc.value.status == 404
            with pytest.raises(ServeHTTPError) as exc:
                client.kernel(model="tiny", X=np.zeros((3, 8)), pattern="nope")
            assert exc.value.status == 400
            with pytest.raises(ServeHTTPError) as exc:
                client.kernel(X=np.zeros((3, 8)))  # no model, no graph
            assert exc.value.status == 400
            conn, payload = client._request("GET", "/no/such/route")
            assert conn.status == 404
            # Malformed ids are a client error, not a 500.
            conn, payload = client._request("GET", "/v1/embed/tiny?ids=0,abc")
            assert conn.status == 400
            conn, payload = client._request(
                "POST",
                "/v1/embed/tiny",
                body=json.dumps({"ids": "abc"}).encode(),
                headers={"Content-Type": "application/json"},
            )
            assert conn.status == 400

    def test_http_deadline_504(self):
        config = ServeConfig(
            port=0,
            models=(),
            max_batch=64,
            max_wait_ms=40.0,
            idle_flush_ms=0.0,
        )
        A, X, Y = _mk_problem(40, 4, 2)
        with BackgroundServer(config) as bg:
            with ServeClient(bg.host, bg.port) as client:
                with pytest.raises(ServeHTTPError) as exc:
                    client.kernel(graph=A, X=X, Y=Y, deadline_ms=1.0)
                assert exc.value.status == 504

    def test_http_queue_full_429(self):
        config = ServeConfig(
            port=0,
            models=(),
            max_batch=64,
            max_wait_ms=300.0,
            idle_flush_ms=0.0,
            max_queue=1,
        )
        A, X, Y = _mk_problem(40, 4, 2)
        statuses = []
        lock = threading.Lock()

        def _fire(bg):
            try:
                with ServeClient(bg.host, bg.port, timeout=30.0) as client:
                    client.kernel(graph=A, X=X, Y=Y)
                with lock:
                    statuses.append(200)
            except ServeHTTPError as exc:
                with lock:
                    statuses.append(exc.status)

        with BackgroundServer(config) as bg:
            threads = [
                threading.Thread(target=_fire, args=(bg,)) for _ in range(3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert statuses.count(200) >= 1
        assert statuses.count(429) >= 1

    def test_concurrent_http_clients_bitwise_identical(self, live_server):
        problems = [_mk_problem(40 + 5 * i, 4, 20 + i) for i in range(4)]
        expected = [
            fusedmm(A, X, Y, pattern="sigmoid_embedding") for A, X, Y in problems
        ]
        mismatches = []

        def _client(cid):
            with ServeClient(live_server.host, live_server.port) as client:
                for r in range(6):
                    i = (cid + r) % len(problems)
                    A, X, Y = problems[i]
                    Z = client.kernel(graph=A, X=X, Y=Y, binary=True)
                    if not np.array_equal(Z, expected[i]):
                        mismatches.append((cid, r))

        threads = [
            threading.Thread(target=_client, args=(c,)) for c in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert mismatches == []

    def test_graceful_drain_closes_listener(self):
        config = ServeConfig(port=0, models=())
        bg = BackgroundServer(config).start()
        host, port = bg.host, bg.port
        with ServeClient(host, port) as client:
            assert client.healthz()["status"] == "ok"
        bg.stop()
        with pytest.raises(OSError):
            with ServeClient(host, port, timeout=2.0) as client:
                client.healthz()


# ---------------------------------------------------------------------- #
# End-to-end regressions for the serving bugfix sweep
# ---------------------------------------------------------------------- #
class TestServeRegressions:
    def test_explicit_zero_deadline_disables_server_default(self):
        """``deadline_ms: 0`` means *no deadline*, even when the server
        configures a default — an ``or``-chain collapses the explicit 0
        into "absent" and re-imposes the default on exactly the clients
        opting out."""
        config = ServeConfig(
            port=0,
            models=(),
            max_batch=64,
            max_wait_ms=150.0,
            idle_flush_ms=0.0,
            default_deadline_ms=25.0,
        )
        with BackgroundServer(config) as bg:
            A, X, Y = _mk_problem(30, 4, 13)
            expected = fusedmm(A, X, Y, pattern="sigmoid_embedding")
            with ServeClient(bg.host, bg.port, timeout=30.0) as client:
                # No client deadline: the 25ms server default applies and
                # expires inside the 150ms window wait.
                with pytest.raises(ServeHTTPError) as exc:
                    client.kernel(graph=A, X=X, Y=Y)
                assert exc.value.status == 504
                # Explicit 0 disables the default: same request, 200.
                Z = client.kernel(graph=A, X=X, Y=Y, deadline_ms=0)
                np.testing.assert_array_equal(Z, expected)
                # A real client deadline still wins over the default.
                with pytest.raises(ServeHTTPError) as exc:
                    client.kernel(graph=A, X=X, Y=Y, deadline_ms=1.0)
                assert exc.value.status == 504

    def test_http_10_connection_closed_after_response(self, live_server):
        """A 1.0 client without ``Connection: keep-alive`` reads to EOF;
        the server must close after the response instead of parking the
        connection in keep-alive."""
        import socket as socket_mod

        with socket_mod.create_connection(
            (live_server.host, live_server.port), timeout=10.0
        ) as sock:
            sock.sendall(b"GET /healthz HTTP/1.0\r\n\r\n")
            blob = b""
            while True:  # EOF must arrive; a held-open socket times out
                chunk = sock.recv(4096)
                if not chunk:
                    break
                blob += chunk
        head, _, body = blob.partition(b"\r\n\r\n")
        assert b" 200 " in head.split(b"\r\n")[0]
        assert b"Connection: close" in head
        assert json.loads(body) == {"status": "ok"}


# ---------------------------------------------------------------------- #
# Observability wiring
# ---------------------------------------------------------------------- #
class TestStatsSurfacing:
    def test_runtime_stats_grow_coalescer_section(self):
        runtime = KernelRuntime(num_threads=1)
        assert "coalescer" not in runtime.stats()
        A, X, Y = _mk_problem(30, 4, 0)

        async def _go():
            coalescer = Coalescer(runtime, max_batch=4, max_wait_ms=2.0)
            try:
                await coalescer.submit(KernelRequest(A=A, X=X, Y=Y))
                stats = runtime.stats()
                return stats
            finally:
                coalescer.close()

        stats = asyncio.run(_go())
        assert stats["coalescer"]["submitted"] == 1
        assert "mean_window_occupancy" in stats["coalescer"]
        assert "wait_ms_p99" in stats["coalescer"]
        # Detached again after close().
        assert "coalescer" not in runtime.stats()
        runtime.close()

    def test_attach_stats_section_replace_and_detach(self):
        runtime = KernelRuntime(num_threads=1)
        runtime.attach_stats_section("extra", lambda: {"x": 1})
        assert runtime.stats()["extra"] == {"x": 1}
        runtime.attach_stats_section("extra", lambda: {"x": 2})
        assert runtime.stats()["extra"] == {"x": 2}
        runtime.attach_stats_section("extra", None)
        assert "extra" not in runtime.stats()
        runtime.close()


# ---------------------------------------------------------------------- #
# CLI wiring
# ---------------------------------------------------------------------- #
class TestCLI:
    def test_parser_knows_serve_commands(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["serve", "--port", "0", "--models"])
        assert args.func.__name__ == "_cmd_serve"
        assert args.models == []
        args = parser.parse_args(["bench", "serve", "--clients", "2"])
        assert args.func.__name__ == "_cmd_bench_serve"
        args = parser.parse_args(["runtime", "stats", "--serve"])
        assert args.serve is True

    def test_runtime_stats_serve_prints_coalescer_metrics(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "runtime",
                    "stats",
                    "--nodes",
                    "500",
                    "--epochs",
                    "2",
                    "--serve",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Coalescer" in out
        assert "mean_window_occupancy" in out
        assert "wait_ms_p99" in out


# ---------------------------------------------------------------------- #
# Serving + sharded tier (worker processes)
# ---------------------------------------------------------------------- #
def test_coalescer_sharded_route_bitwise_with_workers():
    """A large request through the worker-pool lane returns exactly the
    serial kernel's bytes."""
    runtime = KernelRuntime(num_threads=1, processes=2, shard_min_nnz=64)
    try:
        A = random_csr(400, 400, density=0.1, seed=5)
        X, Y = make_xy(A, 4, seed=5)
        expected = fusedmm(A, X, Y, pattern="sigmoid_embedding")

        async def _go():
            coalescer = Coalescer(runtime, max_batch=4, shard_min_nnz=64)
            try:
                return await coalescer.submit(KernelRequest(A=A, X=X, Y=Y))
            finally:
                coalescer.close()

        Z = asyncio.run(_go())
        np.testing.assert_array_equal(Z, expected)
    finally:
        runtime.close()


def test_bench_serve_rows_shape():
    """The load generator produces trend-gateable rows (tiny run)."""
    from repro.bench.serve_bench import bench_serve_throughput

    rows = bench_serve_throughput(
        clients=2, requests_per_client=3, nodes=48, dim=4, num_graphs=2
    )
    assert [r["mode"] for r in rows] == ["serial", "coalesced"]
    for row in rows:
        assert row["bitwise_identical"] is True
        assert row["rps"] > 0
    assert "speedup_vs_serial" in rows[1]


def test_statz_document_is_json_serialisable():
    config = ServeConfig(port=0, models=())
    server = KernelServer(config)

    async def _go():
        await server.start()
        try:
            return server.statz()
        finally:
            await server.shutdown()

    doc = asyncio.run(_go())
    blob = json.loads(json.dumps(doc))
    assert blob["requests_served"] == 0
    assert blob["config"]["max_batch"] == config.max_batch
