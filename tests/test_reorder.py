"""Tests for the locality tier: vertex reordering + cache-blocked execution.

The contracts under test:

* **True permutations** — every strategy returns a bijection on the
  vertices (hypothesis property test over random graphs), and the
  permuted matrix is exactly ``A[perm][:, perm]`` in canonical CSR form.
* **Allclose equivalence** — permute → execute → inverse-permute matches
  direct execution across patterns × backends × shard counts; exact at
  float64 up to reassociation (tight tolerance), loose float32 tolerance
  otherwise.
* **``reorder="none"`` stays bitwise identical** to the natural-order
  path — the locality tier must not perturb the repo's existing
  guarantees, in process or through 1/2/4 worker shards.
* **Plan-cache integration** — the reorder strategy is part of the plan
  key, permutations are memoised by fingerprint, and ``"auto"`` records a
  measured sweep.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fused import fusedmm
from repro.errors import BackendError, ShapeError
from repro.graphs import random_features, rmat
from repro.runtime import KernelRuntime
from repro.sparse import (
    REORDER_STRATEGIES,
    build_panels,
    cache_block_partitions,
    clear_reorder_memo,
    random_csr,
    reorder_matrix,
    reorder_memo_info,
    reorder_permutation,
)

from _helpers import make_xy

PATTERNS = ["sigmoid_embedding", "fr_layout", "gcn"]
CONCRETE = [s for s in REORDER_STRATEGIES if s != "none"]


@pytest.fixture(scope="module")
def graph():
    """A power-law graph big enough for multiple panels and plan splits."""
    A = rmat(1500, 24_000, seed=11)
    X = random_features(A.nrows, 12, seed=3)
    return A, X


# ---------------------------------------------------------------------- #
# Permutation correctness
# ---------------------------------------------------------------------- #
@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=60),
    density=st.floats(min_value=0.0, max_value=0.3),
    seed=st.integers(min_value=0, max_value=10_000),
    strategy=st.sampled_from(REORDER_STRATEGIES),
)
def test_every_strategy_returns_a_true_permutation(n, density, seed, strategy):
    A = random_csr(n, n, density=density, seed=seed)
    perm = reorder_permutation(A, strategy)
    assert perm.shape == (n,)
    assert np.array_equal(np.sort(perm), np.arange(n))


@pytest.mark.parametrize("strategy", REORDER_STRATEGIES)
def test_permuted_matrix_is_symmetric_permutation(graph, strategy):
    A, _ = graph
    result = reorder_matrix(A, strategy)
    assert np.array_equal(result.perm[result.inv_perm], np.arange(A.nrows))
    # A_p[i, j] == A[perm[i], perm[j]] — checked densely on a row sample.
    dense = A.to_dense()
    dense_p = result.matrix.to_dense()
    rows = np.arange(0, A.nrows, 97)
    assert np.allclose(
        dense_p[np.ix_(rows, rows)],
        dense[np.ix_(result.perm[rows], result.perm[rows])],
    )
    assert result.matrix.has_sorted_indices()
    assert result.matrix.nnz == A.nnz


def test_reorder_requires_square_matrix():
    A = random_csr(20, 30, density=0.2, seed=0)
    with pytest.raises(ShapeError):
        reorder_permutation(A, "degree")
    # Unknown strategies and "auto" share the validate_reorder error shape
    # ("auto" is resolved by the plan builder, not here).
    B = random_csr(10, 10, density=0.2, seed=0)
    with pytest.raises(BackendError):
        reorder_permutation(B, "bogus")
    with pytest.raises(BackendError):
        reorder_permutation(B, "auto")


def test_reorder_memo_is_keyed_by_fingerprint():
    clear_reorder_memo()
    A = random_csr(40, 40, density=0.2, seed=1)
    r1 = reorder_matrix(A, "degree", memo_key="fp-1")
    r2 = reorder_matrix(A, "degree", memo_key="fp-1")
    assert r1 is r2
    assert reorder_memo_info()["memoized"] == 1
    r3 = reorder_matrix(A, "rcm", memo_key="fp-1")
    assert r3 is not r1
    clear_reorder_memo()
    assert reorder_memo_info()["memoized"] == 0


# ---------------------------------------------------------------------- #
# Cache-blocked panels
# ---------------------------------------------------------------------- #
def test_cache_block_partitions_cover_all_rows(graph):
    A, _ = graph
    parts = cache_block_partitions(A, dim=32, budget_bytes=1 << 16)
    assert parts[0].start == 0 and parts[-1].stop == A.nrows
    for a, b in zip(parts, parts[1:]):
        assert a.stop == b.start
    assert sum(p.nnz for p in parts) == A.nnz
    assert len(parts) > 1  # the tiny budget must actually tile


def test_cache_block_partitions_respect_bounds(graph):
    A, _ = graph
    few = cache_block_partitions(A, dim=32, budget_bytes=1 << 16, max_parts=4)
    assert len(few) <= 4
    many = cache_block_partitions(A, dim=32, budget_bytes=1 << 30, min_parts=6)
    assert len(many) >= 6
    assert sum(p.nnz for p in many) == A.nnz


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=300),
    density=st.floats(min_value=0.0, max_value=0.3),
    seed=st.integers(min_value=0, max_value=10_000),
    dim=st.sampled_from([4, 32, 128]),
    budget=st.sampled_from([1 << 10, 1 << 14, 1 << 20]),
)
def test_cache_block_vectorized_matches_loop(n, density, seed, dim, budget):
    """The chunk-vectorized panel path is boundary-for-boundary identical
    to the Python row loop (also asserted at scale by
    ``benchmarks/bench_cache_block.py``)."""
    A = random_csr(n, n, density=density, seed=seed)
    loop = cache_block_partitions(
        A, dim=dim, budget_bytes=budget, impl="loop"
    )
    vec = cache_block_partitions(
        A, dim=dim, budget_bytes=budget, impl="vectorized"
    )
    assert loop == vec
    auto = cache_block_partitions(A, dim=dim, budget_bytes=budget)
    assert auto == loop


def test_cache_block_vectorized_matches_loop_on_reordered(graph):
    A, _ = graph
    for strategy in CONCRETE:
        Ap = reorder_matrix(A, strategy).matrix
        assert cache_block_partitions(
            Ap, dim=64, budget_bytes=1 << 15, impl="loop"
        ) == cache_block_partitions(
            Ap, dim=64, budget_bytes=1 << 15, impl="vectorized"
        )


def test_cache_block_rejects_unknown_impl(graph):
    A, _ = graph
    with pytest.raises(ValueError):
        cache_block_partitions(A, impl="numba")


def test_build_panels_localises_columns(graph):
    A, _ = graph
    parts = cache_block_partitions(A, dim=32, budget_bytes=1 << 16)
    panels = build_panels(A, parts)
    assert len(panels) == len(parts)
    for panel in panels:
        if panel.matrix is None:
            continue
        # Local indices reference exactly the panel's distinct columns.
        assert panel.matrix.ncols == panel.cols.shape[0]
        restored = panel.cols[panel.matrix.indices]
        lo, hi = int(A.indptr[panel.start]), int(A.indptr[panel.stop])
        assert np.array_equal(restored, A.indices[lo:hi])


# ---------------------------------------------------------------------- #
# Allclose equivalence: permute → execute → inverse-permute
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("pattern", PATTERNS)
@pytest.mark.parametrize("strategy", CONCRETE)
def test_reordered_run_allclose_across_patterns(graph, pattern, strategy):
    A, X = graph
    ref = fusedmm(A, X, X, pattern=pattern, num_threads=1)
    rt = KernelRuntime(num_threads=1)
    Z = rt.run(A, X, pattern=pattern, reorder=strategy)
    assert Z.shape == ref.shape and Z.dtype == ref.dtype
    np.testing.assert_allclose(Z, ref, rtol=1e-4, atol=1e-5)


@pytest.mark.parametrize(
    "backend", ["optimized", "specialized", "generated", "jit"]
)
def test_reordered_run_allclose_across_backends(graph, backend):
    A, X = graph
    ref = fusedmm(A, X, X, pattern="sigmoid_embedding", backend=backend)
    rt = KernelRuntime(num_threads=1)
    Z = rt.run(A, X, pattern="sigmoid_embedding", backend=backend, reorder="degree")
    np.testing.assert_allclose(Z, ref, rtol=1e-4, atol=1e-5)


def test_reordered_exact_at_float64(graph):
    A, X = graph
    X64 = X.astype(np.float64)
    ref = fusedmm(A, X64, X64, pattern="sigmoid_embedding", num_threads=1)
    rt = KernelRuntime(num_threads=1)
    for strategy in CONCRETE:
        Z = rt.run(A, X64, pattern="sigmoid_embedding", reorder=strategy)
        np.testing.assert_allclose(Z, ref, rtol=1e-9, atol=1e-12)


def test_reordered_spmm_and_derived_matrices(graph):
    A, X = graph
    rt = KernelRuntime(num_threads=1)
    stream = rt.epochs(A, pattern="gcn", reorder="degree")
    ref = fusedmm(A, X, X, pattern="gcn", num_threads=1)
    np.testing.assert_allclose(stream.step(None, X), ref, rtol=1e-4, atol=1e-5)
    # Derived matrices (minibatch slices) bypass the reorder tier and stay
    # bitwise identical to the direct kernel.
    sub = A.row_slice(100, 400)
    Zsub = stream.run_on(sub, None, X)
    ref_sub = fusedmm(sub, X[100:400], X, pattern="gcn", num_threads=1)
    assert np.array_equal(Zsub, ref_sub)


def test_reordered_thread_count_invariant(graph):
    A, X = graph
    rt1 = KernelRuntime(num_threads=1)
    rt4 = KernelRuntime(num_threads=4)
    try:
        Z1 = rt1.run(A, X, pattern="sigmoid_embedding", reorder="rcm")
        Z4 = rt4.run(A, X, pattern="sigmoid_embedding", reorder="rcm")
        # Panels are fixed at plan build, so the fan-out width cannot
        # change the arithmetic: bitwise equal across thread counts.
        assert np.array_equal(Z1, Z4)
    finally:
        rt4.close()


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_reordered_sharded_allclose(graph, shards):
    A, X = graph
    ref = fusedmm(A, X, X, pattern="sigmoid_embedding", num_threads=1)
    rt = KernelRuntime(num_threads=1, processes=shards)
    try:
        Z = rt.run_sharded(A, X, pattern="sigmoid_embedding", reorder="degree")
        np.testing.assert_allclose(Z, ref, rtol=1e-4, atol=1e-5)
        fut = rt.submit_sharded(A, X, pattern="sigmoid_embedding", reorder="degree")
        np.testing.assert_allclose(fut.result(), ref, rtol=1e-4, atol=1e-5)
    finally:
        rt.close()


def test_reordered_sharded_bitwise_across_shard_counts(graph):
    """Within the sharded tier the reordered result is itself
    deterministic: every shard count executes the same permuted
    partitions on the absolute edge grid."""
    A, X = graph
    results = []
    for shards in (1, 2, 4):
        rt = KernelRuntime(num_threads=1, processes=shards)
        try:
            results.append(
                rt.run_sharded(A, X, pattern="sigmoid_embedding", reorder="hub")
            )
        finally:
            rt.close()
    assert np.array_equal(results[0], results[1])
    assert np.array_equal(results[0], results[2])


# ---------------------------------------------------------------------- #
# reorder="none" keeps the bitwise guarantees
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", ["auto", "optimized", "specialized", "jit"])
def test_none_is_bitwise_identical_per_backend(graph, backend):
    A, X = graph
    ref = fusedmm(A, X, X, pattern="sigmoid_embedding", backend=backend)
    rt = KernelRuntime(num_threads=1)
    Z = rt.run(A, X, pattern="sigmoid_embedding", backend=backend, reorder="none")
    assert np.array_equal(Z, ref)


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_none_is_bitwise_identical_through_shards(graph, shards):
    A, X = graph
    ref = fusedmm(A, X, X, pattern="sigmoid_embedding", num_threads=1)
    rt = KernelRuntime(num_threads=1, processes=shards)
    try:
        Z = rt.run_sharded(A, X, pattern="sigmoid_embedding", reorder="none")
        assert np.array_equal(Z, ref)
    finally:
        rt.close()


def test_default_reorder_is_none(graph):
    A, X = graph
    rt = KernelRuntime(num_threads=1)
    plan = rt.plan(A, pattern="sigmoid_embedding")
    assert plan.key.reorder == "none"
    assert plan.reorder == "none"
    assert plan.reordered is None


# ---------------------------------------------------------------------- #
# Plan-cache and autotune integration
# ---------------------------------------------------------------------- #
def test_reorder_is_a_plan_cache_dimension(graph):
    A, X = graph
    rt = KernelRuntime(num_threads=1)
    p_none = rt.plan(A, pattern="sigmoid_embedding", reorder="none")
    p_deg = rt.plan(A, pattern="sigmoid_embedding", reorder="degree")
    assert p_none is not p_deg
    assert p_none.key != p_deg.key
    assert rt.plan(A, pattern="sigmoid_embedding", reorder="degree") is p_deg
    info = p_deg.describe()
    assert info["reorder"] == "degree"
    assert info["panels"] == len(p_deg.partitions) > 0


def test_runtime_default_reorder_applies_to_plans(graph):
    A, X = graph
    rt = KernelRuntime(num_threads=1, reorder="degree")
    assert rt.plan(A, pattern="sigmoid_embedding").reorder == "degree"
    assert rt.stats()["reorder"] == "degree"
    # Per-call override wins over the runtime default.
    assert rt.plan(A, pattern="sigmoid_embedding", reorder="none").reorder == "none"


def test_run_batch_stays_bitwise_under_reorder_default(graph):
    """Batch requests are one-shot: the locality tier is pinned off so
    run_batch keeps its bitwise-identity promise even when the runtime
    has a reorder default."""
    A, X = graph
    rt = KernelRuntime(num_threads=1, reorder="degree")
    (Z,) = rt.run_batch([{"A": A, "X": X, "pattern": "sigmoid_embedding"}])
    ref = fusedmm(A, X, X, pattern="sigmoid_embedding", num_threads=1)
    assert np.array_equal(Z, ref)


def test_auto_reorder_records_a_measured_sweep(graph):
    A, X = graph
    rt = KernelRuntime(num_threads=1)
    plan = rt.plan(A, pattern="sigmoid_embedding", reorder="auto")
    sweep = plan.reorder_tuning
    assert sweep is not None
    assert set(sweep.trials) == set(REORDER_STRATEGIES)
    assert plan.reorder == sweep.strategy
    assert all(t >= 0.0 for t in sweep.trials.values())
    Z = rt.run(A, X, pattern="sigmoid_embedding", reorder="auto")
    ref = fusedmm(A, X, X, pattern="sigmoid_embedding", num_threads=1)
    np.testing.assert_allclose(Z, ref, rtol=1e-4, atol=1e-5)


def test_auto_sweep_is_cached_and_losers_not_memoised(graph):
    """Rebuilding an auto plan reuses the measured verdict without
    re-sweeping, and only the winning strategy's permutation stays in the
    reorder memo."""
    A, _ = graph
    clear_reorder_memo()
    rt1 = KernelRuntime(num_threads=1)
    p1 = rt1.plan(A, pattern="fr_layout", reorder="auto")
    memoized = reorder_memo_info()["memoized"]
    assert memoized <= 1  # the winner at most; losers garbage-collected
    if p1.reorder != "none":
        # The winner's reordering was transplanted from its measured
        # trial and memoised — not recomputed.
        assert memoized == 1
        hit = reorder_matrix(A, p1.reorder, memo_key=p1.key.fingerprint)
        assert hit.matrix is p1.reordered
    rt2 = KernelRuntime(num_threads=1)  # fresh runtime, fresh plan cache
    p2 = rt2.plan(A, pattern="fr_layout", reorder="auto")
    assert p2.reorder_tuning is p1.reorder_tuning  # cache hit, no re-sweep
    assert p2.reorder == p1.reorder


def test_plan_cache_byte_budget_evicts_heavy_reordered_plans(graph):
    """Reordered plans pin ~2x their adjacency; the plan LRU bounds the
    total retained bytes, not just the entry count."""
    from repro.runtime import PlanCache

    A, _ = graph
    rt = KernelRuntime(num_threads=1)
    plan = rt.plan(A, pattern="sigmoid_embedding", reorder="degree")
    weight = plan.retained_bytes()
    assert weight > A.memory_bytes()  # permuted copy + panels
    assert rt.plan(A, pattern="sigmoid_embedding").retained_bytes() == 0

    cache = PlanCache(capacity=8, byte_budget=weight + 1)
    cache.put("a", plan)
    cache.put("b", plan)  # two heavy plans exceed the budget
    stats = cache.stats()
    assert stats.size == 1 and stats.evictions == 1
    assert stats.retained_bytes <= weight + 1
    assert "b" in cache and "a" not in cache


def test_invalid_reorder_rejected(graph):
    A, _ = graph
    rt = KernelRuntime(num_threads=1)
    with pytest.raises(BackendError):
        rt.plan(A, pattern="sigmoid_embedding", reorder="sideways")
    with pytest.raises(BackendError):
        KernelRuntime(reorder="sideways")


def test_reorder_falls_back_for_ineligible_matrices():
    rt = KernelRuntime(num_threads=1)
    # Rectangular: silently "none" (the knob is a performance hint).
    A = random_csr(40, 60, density=0.1, seed=2)
    X = random_features(40, 8, seed=0)
    Y = random_features(60, 8, seed=1)
    plan = rt.plan(A, pattern="sigmoid_embedding", reorder="degree")
    assert plan.reorder == "none"
    assert np.array_equal(
        rt.run(A, X, Y, pattern="sigmoid_embedding", reorder="degree"),
        fusedmm(A, X, Y, pattern="sigmoid_embedding", num_threads=1),
    )
    # Generic backend keeps reference semantics.
    B = random_csr(30, 30, density=0.2, seed=3)
    plan = rt.plan(B, pattern="sigmoid_embedding", backend="generic", reorder="rcm")
    assert plan.reorder == "none"


# ---------------------------------------------------------------------- #
# App plumbing
# ---------------------------------------------------------------------- #
def test_apps_take_reorder_in_configs():
    from repro.apps import Force2Vec, Force2VecConfig
    from repro.apps.fr_layout import FRLayoutConfig
    from repro.apps.gcn import GCNConfig
    from repro.apps.verse import VerseConfig
    from repro.graphs.graph import Graph

    for cfg_cls in (Force2VecConfig, VerseConfig, GCNConfig, FRLayoutConfig):
        with pytest.raises(BackendError):
            cfg_cls(reorder="bogus")
        assert cfg_cls(reorder="degree").reorder == "degree"

    g = Graph(rmat(300, 3_000, seed=1), name="tiny")
    model = Force2Vec(g, Force2VecConfig(dim=8, epochs=1, reorder="degree", seed=0))
    model.train()
    assert model._sig_stream.plan.key.reorder == "degree"
    stats = model.runtime_stats()
    assert stats["reorder"] == "none"  # runtime default; plans override per call
    assert "hit_rate" in stats["plan_cache"]


# ---------------------------------------------------------------------- #
# Hypothesis: end-to-end equivalence over random problems
# ---------------------------------------------------------------------- #
@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=80),
    density=st.floats(min_value=0.02, max_value=0.4),
    seed=st.integers(min_value=0, max_value=1_000),
    strategy=st.sampled_from(CONCRETE),
    pattern=st.sampled_from(PATTERNS),
)
def test_property_reordered_matches_direct(n, density, seed, strategy, pattern):
    A = random_csr(n, n, density=density, seed=seed)
    X, Y = make_xy(A, 6, seed=seed)
    ref = fusedmm(A, X, Y, pattern=pattern, num_threads=1)
    rt = KernelRuntime(num_threads=1)
    Z = rt.run(A, X, Y, pattern=pattern, reorder=strategy)
    np.testing.assert_allclose(Z, ref, rtol=1e-4, atol=1e-5)
