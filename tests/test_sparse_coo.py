"""Unit tests for the COO matrix substrate."""

import numpy as np
import pytest

from repro.errors import ShapeError, SparseFormatError
from repro.sparse import COOMatrix


def test_basic_construction_and_shape():
    coo = COOMatrix(3, 4, np.array([0, 1, 2]), np.array([1, 2, 3]), np.array([1.0, 2.0, 3.0]))
    assert coo.shape == (3, 4)
    assert coo.nnz == 3
    assert coo.dtype == np.float32 or np.issubdtype(coo.dtype, np.floating)


def test_default_values_are_ones():
    coo = COOMatrix(2, 2, np.array([0, 1]), np.array([1, 0]))
    assert np.allclose(coo.vals, 1.0)


def test_integer_values_cast_to_float():
    coo = COOMatrix(2, 2, np.array([0]), np.array([1]), np.array([5]))
    assert np.issubdtype(coo.vals.dtype, np.floating)


def test_negative_dimension_rejected():
    with pytest.raises(ShapeError):
        COOMatrix(-1, 2, np.array([], dtype=np.int64), np.array([], dtype=np.int64))


def test_mismatched_lengths_rejected():
    with pytest.raises(SparseFormatError):
        COOMatrix(3, 3, np.array([0, 1]), np.array([0]), np.array([1.0, 2.0]))


def test_out_of_range_row_rejected():
    with pytest.raises(SparseFormatError):
        COOMatrix(2, 2, np.array([2]), np.array([0]))


def test_out_of_range_col_rejected():
    with pytest.raises(SparseFormatError):
        COOMatrix(2, 2, np.array([0]), np.array([5]))


def test_from_edges():
    coo = COOMatrix.from_edges([(0, 1), (1, 2), (2, 0)], nrows=3)
    assert coo.shape == (3, 3)
    assert coo.nnz == 3


def test_from_edges_empty():
    coo = COOMatrix.from_edges([], nrows=4, ncols=5)
    assert coo.shape == (4, 5)
    assert coo.nnz == 0


def test_from_edges_bad_shape_rejected():
    with pytest.raises(SparseFormatError):
        COOMatrix.from_edges([(0, 1, 2)], nrows=3)


def test_empty_constructor():
    coo = COOMatrix.empty(3, 7)
    assert coo.shape == (3, 7)
    assert coo.nnz == 0
    assert coo.to_dense().sum() == 0.0


def test_deduplicate_sum():
    coo = COOMatrix(2, 2, np.array([0, 0, 1]), np.array([1, 1, 0]), np.array([1.0, 2.0, 3.0]))
    dedup = coo.deduplicate(op="sum")
    assert dedup.nnz == 2
    dense = dedup.to_dense()
    assert dense[0, 1] == pytest.approx(3.0)
    assert dense[1, 0] == pytest.approx(3.0)


def test_deduplicate_max_and_last():
    coo = COOMatrix(2, 2, np.array([0, 0]), np.array([1, 1]), np.array([5.0, 2.0]))
    assert coo.deduplicate(op="max").to_dense()[0, 1] == pytest.approx(5.0)
    assert coo.deduplicate(op="last").to_dense()[0, 1] == pytest.approx(2.0)


def test_deduplicate_unknown_op():
    coo = COOMatrix.empty(2, 2)
    with pytest.raises(ValueError):
        COOMatrix(2, 2, np.array([0]), np.array([1])).deduplicate(op="median")
    assert coo.deduplicate().nnz == 0  # empty matrix stays empty


def test_transpose_roundtrip():
    coo = COOMatrix(3, 5, np.array([0, 2]), np.array([4, 1]), np.array([1.5, 2.5]))
    t = coo.transpose()
    assert t.shape == (5, 3)
    assert np.allclose(t.to_dense(), coo.to_dense().T)
    assert np.allclose(t.transpose().to_dense(), coo.to_dense())


def test_symmetrize_contains_both_directions():
    coo = COOMatrix(3, 3, np.array([0]), np.array([1]), np.array([2.0]))
    sym = coo.symmetrize()
    dense = sym.to_dense()
    assert dense[0, 1] == pytest.approx(2.0)
    assert dense[1, 0] == pytest.approx(2.0)


def test_symmetrize_does_not_double_existing_symmetric_entries():
    coo = COOMatrix(2, 2, np.array([0, 1]), np.array([1, 0]), np.array([3.0, 3.0]))
    sym = coo.symmetrize()
    assert sym.to_dense()[0, 1] == pytest.approx(3.0)


def test_drop_self_loops():
    coo = COOMatrix(3, 3, np.array([0, 1, 2]), np.array([0, 2, 2]), np.array([1.0, 1.0, 1.0]))
    out = coo.drop_self_loops()
    assert out.nnz == 1
    assert out.to_dense()[1, 2] == pytest.approx(1.0)


def test_to_dense_accumulates_duplicates():
    coo = COOMatrix(1, 1, np.array([0, 0]), np.array([0, 0]), np.array([1.0, 2.0]))
    assert coo.to_dense()[0, 0] == pytest.approx(3.0)


def test_row_degrees():
    coo = COOMatrix(3, 3, np.array([0, 0, 2]), np.array([1, 2, 0]))
    assert list(coo.row_degrees()) == [2, 0, 1]


def test_to_csr_roundtrip_values():
    coo = COOMatrix(3, 3, np.array([2, 0, 1]), np.array([0, 2, 1]), np.array([1.0, 2.0, 3.0]))
    csr = coo.to_csr()
    assert np.allclose(csr.to_dense(), coo.to_dense())
