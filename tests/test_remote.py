"""Tests for the distributed worker tier (TCP transport + controller).

Covers the contracts the tier advertises:

* **Bitwise identity** — remote execution through 1, 2 and 4 worker
  hosts produces results bitwise identical to sequential single-process
  ``fusedmm``; shard *placement* (local process, remote host, parent
  fallback) never changes the bytes of ``Z``.
* **Fault tolerance** — a host that dies mid-batch (crash injection) has
  its shard group re-routed to a survivor; a socket severed mid-frame is
  detected promptly (never a hang); when every host dies the batch
  completes in-parent.  All recovery paths return the exact bytes.
* **Transport codec** — CSR and run-spec payloads round-trip through the
  worker protocol; non-JSON-able specs (callable operators) stay
  host-local.
* **Routing** — :func:`~repro.runtime.shard.route_shards` partitions
  shard groups by weight without losing, duplicating or reordering a
  shard.
* **Unified client API** — ``repro.serve.connect`` picks the transport
  by URL scheme, both clients satisfy the ``Client`` protocol, and HTTP
  admission errors raise the same typed ``ServeError`` subclasses the
  wire protocol reconstructs.
"""

import socket
import struct
import threading
import time

import numpy as np
import pytest

from repro.core.fused import fusedmm
from repro.errors import (
    BackendError,
    PartitionError,
    QueueFullError,
    ServeError,
)
from repro.graphs import random_features, rmat
from repro.runtime import (
    KernelRuntime,
    RemoteController,
    RuntimeOptions,
    WorkerAgent,
    route_shards,
)
from repro.runtime.codec import (
    OP_REGISTER,
    OP_RESULT,
    OP_RUN,
    OP_WELCOME,
    WORKER_CODEC,
    decode_csr,
    encode_csr,
    plan_spec_from_plan,
    remote_spec_meta,
    spec_from_meta,
)
from repro.framing import FRAME_HEADER, decode_payload, encode_payload

from _helpers import make_xy

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


# ---------------------------------------------------------------------- #
# Fixtures and helpers
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def problem():
    """A graph big enough to split into several plan partitions."""
    A = rmat(4000, 64_000, seed=4)
    X = random_features(A.nrows, 16, seed=2)
    return A, X


class _AgentThread:
    """A WorkerAgent served from a thread (same-process remote host)."""

    def __init__(self, port, *, reconnect_delay=1.0, **kwargs):
        self.agent = WorkerAgent("127.0.0.1", port, **kwargs)
        self.thread = threading.Thread(
            target=self.agent.run_forever,
            kwargs={"reconnect_delay": reconnect_delay},
            daemon=True,
        )
        self.thread.start()

    def stop(self):
        self.agent.stop()
        self.thread.join(timeout=10)


def _remote_runtime(n_agents, *, agent_kwargs=(), **runtime_kwargs):
    """A runtime with ``n_agents`` thread-served hosts already joined."""
    runtime = KernelRuntime(
        num_threads=1, processes=0, remote_port=0, **runtime_kwargs
    )
    controller = runtime.controller
    agents = []
    for i in range(n_agents):
        kwargs = dict(agent_kwargs[i]) if i < len(agent_kwargs) else {}
        kwargs.setdefault("name", f"a{i}")
        agents.append(_AgentThread(controller.port, **kwargs))
    assert controller.wait_for_hosts(n_agents, timeout=15.0) == n_agents
    return runtime, agents


def _teardown(runtime, agents):
    runtime.close()
    for a in agents:
        a.stop()


# ---------------------------------------------------------------------- #
# Bitwise identity: local vs remote at 1 / 2 / 4 hosts
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("hosts", [1, 2, 4])
def test_remote_bitwise_identity(problem, hosts):
    A, X = problem
    ref = fusedmm(A, X, X, pattern="sigmoid_embedding", num_threads=1)
    runtime, agents = _remote_runtime(hosts)
    try:
        Z = runtime.run_sharded(A, X, pattern="sigmoid_embedding")
        assert Z.dtype == ref.dtype
        assert np.array_equal(Z, ref)
        # Second batch rides the cached CSR on every host (no re-ship).
        assert np.array_equal(
            runtime.run_sharded(A, X, pattern="sigmoid_embedding"), ref
        )
    finally:
        _teardown(runtime, agents)


@pytest.mark.parametrize("pattern", ["fr_layout", "gcn", "spmm"])
def test_remote_identity_across_patterns(problem, pattern):
    A, _ = problem
    X, Y = make_xy(A, 12)
    ref = fusedmm(A, X, Y, pattern=pattern, num_threads=1)
    runtime, agents = _remote_runtime(2)
    try:
        Z = runtime.run_sharded(A, X, Y, pattern=pattern)
        assert np.array_equal(Z, ref)
    finally:
        _teardown(runtime, agents)


def test_hybrid_local_plus_remote_identity(problem):
    """Local worker processes and remote hosts split one batch bitwise."""
    A, X = problem
    ref = fusedmm(A, X, X, pattern="sigmoid_embedding", num_threads=1)
    runtime = KernelRuntime(num_threads=1, processes=2, remote_port=0)
    agents = []
    try:
        agents.append(_AgentThread(runtime.controller.port, name="a0"))
        assert runtime.controller.wait_for_hosts(1, timeout=15.0) == 1
        Z = runtime.run_sharded(A, X, pattern="sigmoid_embedding")
        assert np.array_equal(Z, ref)
        stats = runtime.stats()
        assert stats["remote"]["batches"] >= 1
    finally:
        _teardown(runtime, agents)


def test_remote_threads_gt_one_identity(problem):
    """Agent-side threading rides the determinism contract: same bytes."""
    A, X = problem
    ref = fusedmm(A, X, X, pattern="sigmoid_embedding", num_threads=1)
    runtime, agents = _remote_runtime(1, agent_kwargs=({"threads": 2, "slots": 2},))
    try:
        Z = runtime.run_sharded(A, X, pattern="sigmoid_embedding")
        assert np.array_equal(Z, ref)
    finally:
        _teardown(runtime, agents)


def test_remote_submit_sharded(problem):
    A, X = problem
    ref = fusedmm(A, X, X, pattern="sigmoid_embedding", num_threads=1)
    runtime, agents = _remote_runtime(2)
    try:
        future = runtime.submit_sharded(A, X, pattern="sigmoid_embedding")
        assert np.array_equal(future.result(timeout=60), ref)
    finally:
        _teardown(runtime, agents)


# ---------------------------------------------------------------------- #
# Fault tolerance
# ---------------------------------------------------------------------- #
def test_kill_one_host_mid_batch_completes_on_survivor(problem):
    A, X = problem
    ref = fusedmm(A, X, X, pattern="sigmoid_embedding", num_threads=1)
    runtime, agents = _remote_runtime(
        2, agent_kwargs=({}, {"crash_after": 1})
    )
    try:
        Z = runtime.run_sharded(A, X, pattern="sigmoid_embedding")
        assert np.array_equal(Z, ref)
        remote = runtime.stats()["remote"]
        assert remote["hosts_lost"] >= 1
        assert remote["retries"] >= 1
        # The survivor keeps serving subsequent batches.
        assert np.array_equal(
            runtime.run_sharded(A, X, pattern="sigmoid_embedding"), ref
        )
    finally:
        _teardown(runtime, agents)


def test_two_nonadjacent_hosts_lost_mid_batch_no_corruption(problem):
    """Regression: two *non-adjacent* groups fail in one batch (hosts 0
    and 2 of 3), so the retry round hands the survivor work spanning the
    row range the survivor already completed in round one.  The write-back
    must scatter only covered ranges — a full-span write would zero the
    survivor's finished rows."""
    A, X = problem
    ref = fusedmm(A, X, X, pattern="sigmoid_embedding", num_threads=1)
    runtime, agents = _remote_runtime(
        3, agent_kwargs=({"crash_after": 1}, {}, {"crash_after": 1})
    )
    try:
        Z = runtime.run_sharded(A, X, pattern="sigmoid_embedding")
        assert np.array_equal(Z, ref)
        remote = runtime.stats()["remote"]
        assert remote["hosts_lost"] >= 2
        assert remote["retries"] >= 1
    finally:
        _teardown(runtime, agents)


def test_all_hosts_dead_falls_back_to_parent(problem):
    A, X = problem
    ref = fusedmm(A, X, X, pattern="sigmoid_embedding", num_threads=1)
    runtime, agents = _remote_runtime(
        2, agent_kwargs=({"crash_after": 1}, {"crash_after": 1})
    )
    try:
        Z = runtime.run_sharded(A, X, pattern="sigmoid_embedding")
        assert np.array_equal(Z, ref)
        assert runtime.stats()["remote_fallbacks"] >= 1
    finally:
        _teardown(runtime, agents)


def _half_frame_worker(port, ready, *, timeout=30.0):
    """A scripted fake host: registers, acks LOADs, then on the first RUN
    sends *half* a RESULT frame and severs the socket."""
    sock = socket.create_connection(("127.0.0.1", port), timeout=timeout)
    rfile = sock.makefile("rb")
    sock.sendall(
        WORKER_CODEC.pack_frame(
            OP_REGISTER, 0, encode_payload({"name": "liar", "slots": 1})
        )
    )
    opcode, _, _ = WORKER_CODEC.read_frame(rfile)
    assert opcode == OP_WELCOME
    ready.set()
    while True:
        frame = WORKER_CODEC.read_frame(rfile)
        if frame is None:
            break
        opcode, request_id, _ = frame
        if opcode == OP_RUN:
            whole = WORKER_CODEC.pack_frame(
                OP_RESULT,
                request_id,
                encode_payload({}, {"z": np.zeros((4, 4), dtype=np.float32)}),
            )
            sock.sendall(whole[: len(whole) // 2])
            break
        # PING / LOAD: ack with an empty result so the exchange advances.
        sock.sendall(
            WORKER_CODEC.pack_frame(OP_RESULT, request_id, encode_payload({}))
        )
    rfile.close()
    sock.close()


def test_socket_severed_mid_frame_recovers_promptly(problem):
    """A mid-frame cut is a lost host, not a hang: the batch finishes
    in-parent (no other hosts) with the exact bytes."""
    A, X = problem
    ref = fusedmm(A, X, X, pattern="sigmoid_embedding", num_threads=1)
    runtime = KernelRuntime(
        num_threads=1, processes=0, remote_port=0, remote_timeout=30.0
    )
    ready = threading.Event()
    thread = None
    try:
        port = runtime.controller.port
        thread = threading.Thread(
            target=_half_frame_worker, args=(port, ready), daemon=True
        )
        thread.start()
        assert ready.wait(timeout=15.0)
        assert runtime.controller.wait_for_hosts(1, timeout=15.0) == 1
        t0 = time.monotonic()
        Z = runtime.run_sharded(A, X, pattern="sigmoid_embedding")
        elapsed = time.monotonic() - t0
        assert np.array_equal(Z, ref)
        assert elapsed < 20.0, f"mid-frame sever took {elapsed:.1f}s to recover"
        assert runtime.controller.stats()["hosts_lost"] >= 1
    finally:
        runtime.close()
        if thread is not None:
            thread.join(timeout=10)


def test_heartbeat_evicts_dead_idle_host():
    runtime = KernelRuntime(
        num_threads=1, processes=0, remote_port=0, remote_heartbeat_s=0.2
    )
    try:
        controller = runtime.controller
        agent = _AgentThread(controller.port, name="a0")
        assert controller.wait_for_hosts(1, timeout=15.0) == 1
        # Kill the agent without telling the controller: the heartbeat
        # must notice and evict within a few beats.
        agent.stop()
        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline and controller.live_hosts():
            time.sleep(0.05)
        assert controller.live_hosts() == []
        assert controller.hosts_lost >= 1
    finally:
        runtime.close()


# ---------------------------------------------------------------------- #
# Resilience: restart recovery, quarantine, hedging, client retries
# ---------------------------------------------------------------------- #
def _free_port():
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def test_controller_restart_agents_rejoin_bitwise(problem):
    """Sever the controller without the EXIT handshake (a crash, not a
    shutdown): agents must rejoin the replacement on the same port via
    their backoff loop — promptly, without a tight reconnect spin — and
    the next batch must produce the exact bytes."""
    A, X = problem
    ref = fusedmm(A, X, X, pattern="sigmoid_embedding", num_threads=1)
    port = _free_port()
    runtime = KernelRuntime(num_threads=1, processes=0, remote_port=port)
    agents = []
    try:
        controller = runtime.controller
        agents = [
            _AgentThread(port, name=f"r{i}", reconnect_delay=0.05)
            for i in range(2)
        ]
        assert controller.wait_for_hosts(2, timeout=15.0) == 2
        assert np.array_equal(
            runtime.run_sharded(A, X, pattern="sigmoid_embedding"), ref
        )
        # Simulated controller crash: connections severed, no EXIT.
        controller.close(notify=False)
        runtime.close()
        runtime = KernelRuntime(num_threads=1, processes=0, remote_port=port)
        assert runtime.controller.wait_for_hosts(2, timeout=15.0) == 2
        assert np.array_equal(
            runtime.run_sharded(A, X, pattern="sigmoid_embedding"), ref
        )
        # Backoff, not a tight loop: a handful of attempts, not hundreds.
        for a in agents:
            assert 1 <= a.agent.reconnects < 50
    finally:
        runtime.close()
        for a in agents:
            a.stop()


def test_flapping_host_quarantined_then_probed(problem):
    """A host whose every RUN severs the connection must be quarantined
    by the controller within its failure threshold — while the steady
    host keeps every batch bitwise — and re-admitted only through a
    probe once the quarantine period elapses."""
    from repro.resilience import FaultPlan, HealthTracker

    A, X = problem
    ref = fusedmm(A, X, X, pattern="sigmoid_embedding", num_threads=1)
    runtime, agents = _remote_runtime(
        2,
        agent_kwargs=(
            {},
            {
                "name": "flapper",
                "fault_plan": FaultPlan.from_spec("disconnect@1+"),
                "reconnect_delay": 0.05,
            },
        ),
    )
    try:
        controller = runtime.controller
        # Tighten the breaker so the test is fast: 2 strikes, generous
        # quarantine (the probe path is unit-tested on a fake clock).
        controller.health = HealthTracker(
            failure_threshold=2, failure_window_s=30.0, quarantine_s=60.0
        )
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            assert np.array_equal(
                runtime.run_sharded(A, X, pattern="sigmoid_embedding"), ref
            )
            if controller.health.state("flapper") == "quarantined":
                break
            time.sleep(0.05)
        assert controller.health.state("flapper") == "quarantined"
        stats = controller.stats()
        assert stats["quarantined_hosts"] >= 1
        assert stats["quarantined_now"] >= 1
        # The flapper keeps retrying registration and is shed at the
        # door with a retryable 503 while quarantined.
        deadline = time.monotonic() + 15.0
        while (
            time.monotonic() < deadline
            and controller.stats()["registrations_rejected"] == 0
        ):
            time.sleep(0.05)
        assert controller.stats()["registrations_rejected"] >= 1
    finally:
        _teardown(runtime, agents)


def test_hedge_rescues_straggler(problem):
    """A host stalling on a late RUN (after the controller has throughput
    samples) is hedged: the chunk is speculatively recomputed in-parent,
    the first completion wins, and the bytes never change."""
    from repro.resilience import FaultPlan

    A, X = problem
    ref = fusedmm(A, X, X, pattern="sigmoid_embedding", num_threads=1)
    runtime, agents = _remote_runtime(
        2,
        agent_kwargs=(
            {},
            {"fault_plan": FaultPlan.from_spec("delay@4:2.5")},
        ),
    )
    try:
        for _ in range(3):  # warm-up: plans, CSR ship, throughput samples
            assert np.array_equal(
                runtime.run_sharded(A, X, pattern="sigmoid_embedding"), ref
            )
        Z = runtime.run_sharded(A, X, pattern="sigmoid_embedding")
        assert np.array_equal(Z, ref)
        remote = runtime.stats()["remote"]
        assert remote["hedges"] >= 1
        assert remote["hedge_wins"] >= 1
        assert remote["hedge_errors"] == 0
    finally:
        _teardown(runtime, agents)


def test_remote_stats_expose_resilience_counters(problem):
    runtime, agents = _remote_runtime(1)
    try:
        remote = runtime.stats()["remote"]
        for key in (
            "retries",
            "hedges",
            "hedge_wins",
            "quarantined_hosts",
            "quarantined_now",
            "probes",
            "registrations_rejected",
        ):
            assert key in remote, key
    finally:
        _teardown(runtime, agents)


def test_serve_client_retries_through_injected_faults(problem):
    """HTTP and wire clients armed with a RetryPolicy ride out
    request-level disconnect faults injected server-side; every answered
    response is bitwise."""
    from repro.resilience import RetryPolicy
    from repro.serve import BackgroundServer, ServeConfig, connect

    A, X = problem
    ref = fusedmm(A, X, X, pattern="sigmoid_embedding", num_threads=1)
    config = ServeConfig(
        port=0, wire_port=0, models=(), fault_spec="disconnect@2,drop_frame@5"
    )
    policy = RetryPolicy(base_delay=0.02, max_delay=0.2, max_attempts=8, seed=1)
    with BackgroundServer(config) as server:
        with connect(
            f"http://127.0.0.1:{server.port}", retry=policy
        ) as http, connect(
            f"wire://127.0.0.1:{server.wire_port}", retry=policy
        ) as wire:
            total_retries = 0
            for _ in range(4):
                for client in (http, wire):
                    Z = client.kernel(graph=A, x=X, pattern="sigmoid_embedding")
                    assert np.array_equal(Z, ref)
            total_retries = http.retries_attempted + wire.retries_attempted
        assert total_retries >= 1
        assert server.server.fault_injector.kinds_fired()


def test_worker_agent_reconnect_uses_backoff_policy():
    """run_forever's reconnect delay routes through RetryPolicy: a dead
    controller address never produces a tight spin."""
    port = _free_port()  # nothing listening
    agent = WorkerAgent("127.0.0.1", port, name="lonely")
    thread = threading.Thread(
        target=agent.run_forever,
        kwargs={"reconnect_delay": 0.1},
        daemon=True,
    )
    t0 = time.monotonic()
    thread.start()
    time.sleep(1.0)
    agent.stop()
    thread.join(timeout=10)
    elapsed = time.monotonic() - t0
    # With base 0.1 and exponential growth, ~1s admits only a handful of
    # attempts; a tight loop would rack up thousands.
    assert 1 <= agent.reconnects <= 12, agent.reconnects
    assert elapsed < 15.0


# ---------------------------------------------------------------------- #
# Transport hardening: registration auth + payload caps + bad framing
# ---------------------------------------------------------------------- #
def test_registration_token_rejects_and_admits():
    controller = RemoteController(token="s3cret")
    try:
        bad = WorkerAgent("127.0.0.1", controller.port, name="bad")
        assert bad.serve() == "rejected"
        assert "token" in (bad.last_error or "")
        assert controller.wait_for_hosts(1, timeout=0.5) == 0
        good = _AgentThread(controller.port, name="good", token="s3cret")
        try:
            assert controller.wait_for_hosts(1, timeout=15.0) == 1
        finally:
            good.stop()
    finally:
        controller.close()


def test_runtime_passes_token_through(problem):
    """End-to-end: a tokened runtime admits a tokened agent and executes."""
    A, X = problem
    ref = fusedmm(A, X, X, pattern="sigmoid_embedding", num_threads=1)
    runtime, agents = _remote_runtime(
        1, agent_kwargs=({"token": "t0"},), remote_token="t0"
    )
    try:
        assert np.array_equal(
            runtime.run_sharded(A, X, pattern="sigmoid_embedding"), ref
        )
    finally:
        _teardown(runtime, agents)


def test_forged_frame_length_is_rejected_not_allocated():
    """A forged 4-byte length field must close the connection, never
    drive a giant allocation."""
    controller = RemoteController(max_payload=1024)
    sock = None
    try:
        sock = socket.create_connection(("127.0.0.1", controller.port), timeout=10)
        sock.sendall(
            FRAME_HEADER.pack(b"RK", 1, OP_REGISTER, 0, 3 * 2**30)
        )
        sock.settimeout(10)
        assert sock.recv(1) == b""  # hung up on us — no WELCOME
        assert controller.live_hosts() == []
    finally:
        if sock is not None:
            sock.close()
        controller.close()


def test_agent_treats_bad_magic_as_disconnect():
    """Garbage framing from the controller side must end serve() with a
    clean "disconnected", not a ProtocolError traceback killing the
    worker process."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    port = listener.getsockname()[1]

    def fake_controller():
        conn, _ = listener.accept()
        rfile = conn.makefile("rb")
        WORKER_CODEC.read_frame(rfile)  # REGISTER
        conn.sendall(
            WORKER_CODEC.pack_frame(
                OP_WELCOME, 0, encode_payload({"host_id": 1})
            )
        )
        conn.sendall(b"XX" + bytes(FRAME_HEADER.size - 2))  # bad magic
        time.sleep(0.2)
        rfile.close()
        conn.close()

    thread = threading.Thread(target=fake_controller, daemon=True)
    thread.start()
    try:
        agent = WorkerAgent("127.0.0.1", port, name="victim")
        assert agent.serve() == "disconnected"
    finally:
        thread.join(timeout=10)
        listener.close()


# ---------------------------------------------------------------------- #
# Transport codec
# ---------------------------------------------------------------------- #
def test_csr_payload_roundtrip():
    from repro.sparse import random_csr

    A = random_csr(50, 40, density=0.1, seed=3)
    meta, arrays = encode_csr(A)
    B = decode_csr(meta, arrays)
    assert B.nrows == A.nrows and B.ncols == A.ncols
    assert np.array_equal(B.indptr, A.indptr)
    assert np.array_equal(B.indices, A.indices)
    assert np.array_equal(B.data, A.data)


def test_spec_meta_roundtrip(problem):
    A, X = problem
    runtime = KernelRuntime(num_threads=1)
    try:
        plan = runtime.plan(A, pattern="sigmoid_embedding")
        spec = plan_spec_from_plan(plan)
        meta = remote_spec_meta(spec)
        assert meta is not None
        rebuilt = spec_from_meta(meta)
        assert rebuilt["backend"] == spec["backend"]
        assert rebuilt["block_size"] == spec["block_size"]
        assert rebuilt["strategy"] == spec["strategy"]
        assert rebuilt["op_pattern"].resolved().op_names() == spec[
            "op_pattern"
        ].resolved().op_names()
    finally:
        runtime.close()


def test_spec_meta_rejects_callable_ops():
    """Specs with callable operators are not wire-shippable: they stay
    host-local (remote_spec_meta -> None) rather than being pickled."""
    from repro.core.patterns import OpPattern

    spec = {
        "op_pattern": OpPattern(
            name="custom",
            vop="sub",
            rop=lambda a: a,
            sop="sigmoid",
            mop="mul",
            aop="add",
        ),
        "backend": "numpy",
        "block_size": 0,
        "strategy": "none",
    }
    assert remote_spec_meta(spec) is None


def test_frame_rejects_bad_magic():
    blob = WORKER_CODEC.pack_frame(OP_RUN, 7, b"")
    bad = b"XX" + blob[2:]
    header = struct.unpack("!2sBBQI", bad[:16])
    assert header[0] == b"XX"
    from repro.framing import ProtocolError

    with pytest.raises(ProtocolError):
        WORKER_CODEC.unpack_header(bad[:16])


# ---------------------------------------------------------------------- #
# route_shards
# ---------------------------------------------------------------------- #
def _shard_plan(A, pattern="sigmoid_embedding"):
    runtime = KernelRuntime(num_threads=1, processes=2)
    try:
        return runtime.shard_plan(A, pattern=pattern, shards=4)
    finally:
        runtime.close()


def test_route_shards_partitions_without_loss(problem):
    A, _ = problem
    plan = _shard_plan(A)
    busy = [a for a in plan.assignments if a.parts]
    groups = route_shards(plan, [1, 1])
    flattened = [a for g in groups for a in g]
    assert flattened == busy  # order preserved, nothing lost or duplicated


def test_route_shards_weights_balance(problem):
    A, _ = problem
    plan = _shard_plan(A)
    busy = [a for a in plan.assignments if a.parts]
    total = sum(a.nnz for a in busy)
    groups = route_shards(plan, [3, 1])
    assert sum(len(g) for g in groups) == len(busy)
    # The weight-3 owner carries the (rough) majority of the nnz.
    assert sum(a.nnz for a in groups[0]) >= total / 2


def test_route_shards_zero_weight_owner_gets_nothing(problem):
    A, _ = problem
    plan = _shard_plan(A)
    groups = route_shards(plan, [0, 1, 0])
    assert groups[0] == [] and groups[2] == []
    assert [a for g in groups for a in g] == [
        a for a in plan.assignments if a.parts
    ]


def test_route_shards_requires_positive_weight(problem):
    A, _ = problem
    plan = _shard_plan(A)
    with pytest.raises(PartitionError):
        route_shards(plan, [0, 0])
    with pytest.raises(PartitionError):
        route_shards(plan, [])


# ---------------------------------------------------------------------- #
# RuntimeOptions consolidation
# ---------------------------------------------------------------------- #
def test_runtime_options_validation():
    with pytest.raises(BackendError):
        RuntimeOptions(kernel_backend="nope")
    with pytest.raises(Exception):
        RuntimeOptions(reorder="nope")
    opts = RuntimeOptions(num_threads=2, processes=3, shard_min_nnz=7)
    assert opts.runtime_kwargs() == {
        "num_threads": 2,
        "processes": 3,
        "shard_min_nnz": 7,
    }


def test_runtime_options_knobs_are_keyword_only():
    """The inherited kernel knobs are kw_only: they never shift a
    subclass's positional parameters, and passing one positionally is an
    explicit TypeError instead of a silent reassignment."""
    from repro.apps import VerseConfig

    with pytest.raises(TypeError):
        RuntimeOptions("jit")
    cfg = VerseConfig(64)  # positional args bind the subclass's own fields
    assert cfg.dim == 64
    assert cfg.kernel_backend == "auto"


def test_app_configs_inherit_runtime_options():
    from repro.apps import Force2VecConfig, FRLayoutConfig, GCNConfig, VerseConfig
    from repro.serve import ServeConfig

    for cls in (Force2VecConfig, VerseConfig, GCNConfig, FRLayoutConfig, ServeConfig):
        assert issubclass(cls, RuntimeOptions)
        cfg = cls()
        assert cfg.kernel_backend == "auto"
        assert cfg.shard_min_nnz == RuntimeOptions().shard_min_nnz
        with pytest.raises(BackendError):
            cls(kernel_backend="nope")


# ---------------------------------------------------------------------- #
# Unified client API
# ---------------------------------------------------------------------- #
def test_connect_scheme_dispatch():
    from repro.serve import Client, ServeClient, connect

    client = connect("http://127.0.0.1:18571")
    assert isinstance(client, ServeClient)
    assert isinstance(client, Client)  # runtime-checkable protocol
    client.close()
    client = connect("http://127.0.0.1")  # port defaults
    assert client.port == 8571
    client.close()
    with pytest.raises(ValueError):
        connect("ftp://127.0.0.1:1")
    with pytest.raises(ValueError):
        connect("wire://127.0.0.1")  # wire requires an explicit port


def test_connect_wire_roundtrip(problem):
    """connect("wire://...") speaks to a live server with the same
    surface (kernel/statz) the HTTP client exposes."""
    from repro.serve import BackgroundServer, Client, ServeConfig, connect

    A, X = problem
    config = ServeConfig(port=0, wire_port=0, models=(), max_wait_ms=0.5)
    with BackgroundServer(config) as server:
        ref = fusedmm(A, X, X, pattern="sigmoid_embedding", num_threads=1)
        with connect(f"wire://127.0.0.1:{server.wire_port}") as client:
            assert isinstance(client, Client)
            Z = client.kernel(graph=A, x=X, pattern="sigmoid_embedding")
            assert np.array_equal(Z, ref)
            assert "config" in client.statz()
        with connect(f"http://127.0.0.1:{server.port}") as client:
            Z = client.kernel(graph=A, x=X, pattern="sigmoid_embedding")
            assert np.array_equal(Z, ref)
            assert "config" in client.statz()


def test_serve_routes_large_singles_to_remote_hosts(problem):
    """A server with ``remote_port`` but no local worker processes must
    still dispatch large singles through registered remote hosts (the
    coalescer gates on total sharded capacity, not the local pool)."""
    from repro.serve import BackgroundServer, ServeConfig, connect

    A, X = problem
    ref = fusedmm(A, X, X, pattern="sigmoid_embedding", num_threads=1)
    config = ServeConfig(
        port=0, wire_port=0, remote_port=0, models=(), shard_min_nnz=16384
    )
    with BackgroundServer(config) as server:
        controller = server.server.registry.runtime.controller
        agents = [_AgentThread(controller.port, name=f"s{i}") for i in range(2)]
        try:
            assert controller.wait_for_hosts(2, timeout=15.0) == 2
            with connect(f"http://127.0.0.1:{server.port}") as client:
                Z = client.kernel(graph=A, x=X, pattern="sigmoid_embedding")
                assert np.array_equal(Z, ref)
                remote = client.statz()["runtime"]["remote"]
            assert remote["hosts_admitted"] == 2
            assert remote["batches"] >= 1
        finally:
            for a in agents:
                a.stop()


def test_sharded_capacity_counts_local_and_remote(problem):
    """sharded_capacity reflects processes + live host slots without
    spawning the worker pool as a side effect."""
    runtime, agents = _remote_runtime(1)
    try:
        assert runtime.sharded_capacity == 1
    finally:
        _teardown(runtime, agents)
    local = KernelRuntime(num_threads=1, processes=2)
    try:
        assert runtime.sharded_capacity == 0  # hosts gone after close
        assert local.sharded_capacity == 2
        assert local._workers is None  # no lazy pool spawn from the property
    finally:
        local.close()


def test_http_errors_are_typed_serve_errors():
    from repro.serve.client import ServeHTTPError, http_error_for_status

    err = http_error_for_status(429, "queue full")
    assert isinstance(err, ServeHTTPError)
    assert isinstance(err, QueueFullError)
    assert isinstance(err, ServeError)
    assert err.status == 429 and err.http_status == 429
    generic = http_error_for_status(404, "no such model")
    assert isinstance(generic, ServeHTTPError)
    assert not isinstance(generic, QueueFullError)
    assert generic.status == 404


def test_serve_config_remote_port_validation():
    from repro.errors import ShapeError
    from repro.serve import ServeConfig

    assert ServeConfig().remote_port is None
    assert ServeConfig(remote_port=0).describe()["remote_port"] == 0
    with pytest.raises(ShapeError):
        ServeConfig(remote_port=-1)
