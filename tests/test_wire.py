"""Binary wire protocol: frame codec, flow control, transport equivalence.

Covers the framed transport at three levels: pure codec (header/payload
round trips, every malformed-frame class), a live server over real
sockets (pipelining, credit enforcement, drain behaviour), and a
hypothesis property that the wire and HTTP front-ends answer identical
requests with bitwise-identical bytes — the transports share one
coalescer, so divergence would mean one of them corrupted a payload.
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fused import fusedmm
from repro.errors import DrainingError, ServeError
from repro.serve import ProtocolError, ServeClient, ServeConfig, WireClient
from repro.serve.runner import BackgroundServer
from repro.serve.wire import (
    FRAME_HEADER,
    OP_ERROR,
    OP_HELLO,
    OP_KERNEL,
    OP_RESULT,
    WIRE_MAGIC,
    WIRE_VERSION,
    _read_frame,
    decode_payload,
    encode_payload,
    pack_frame,
    unpack_header,
)
from repro.sparse import random_csr

from _helpers import make_xy


def _mk_problem(n: int, d: int, seed: int, dtype=np.float32):
    A = random_csr(n, n, density=min(1.0, 4.0 / max(n, 1)), seed=seed)
    X, Y = make_xy(A, d, seed=seed)
    return A, X.astype(dtype), Y.astype(dtype)


# ---------------------------------------------------------------------- #
# Frame + payload codec
# ---------------------------------------------------------------------- #
class TestFrameCodec:
    def test_header_round_trip(self):
        frame = pack_frame(OP_KERNEL, 0xDEADBEEF, b"abc")
        assert len(frame) == FRAME_HEADER.size + 3
        opcode, request_id, length = unpack_header(frame[: FRAME_HEADER.size])
        assert (opcode, request_id, length) == (OP_KERNEL, 0xDEADBEEF, 3)

    def test_bad_magic_and_version_rejected(self):
        good = pack_frame(OP_RESULT, 1, b"")[: FRAME_HEADER.size]
        with pytest.raises(ProtocolError, match="magic"):
            unpack_header(b"XX" + good[2:])
        bad_version = FRAME_HEADER.pack(WIRE_MAGIC, WIRE_VERSION + 9, OP_RESULT, 1, 0)
        with pytest.raises(ProtocolError, match="version"):
            unpack_header(bad_version)

    def test_payload_round_trip_bitwise(self, rng):
        arrays = {
            "x": rng.normal(size=(5, 3)).astype(np.float32),
            "y": rng.normal(size=(4, 2)).astype(np.float64),
            "ids": np.arange(7, dtype=np.int64),
        }
        meta, out = decode_payload(
            encode_payload({"pattern": "gcn", "deadline_ms": 0}, arrays)
        )
        assert meta["pattern"] == "gcn"
        assert meta["deadline_ms"] == 0
        assert meta["arrays"] == ["x", "y", "ids"]
        for name, arr in arrays.items():
            assert out[name].dtype == arr.dtype
            np.testing.assert_array_equal(out[name], arr)

    def test_truncated_and_trailing_payloads_rejected(self, rng):
        blob = encode_payload(
            {"k": 1}, {"x": rng.normal(size=(3, 2)).astype(np.float32)}
        )
        for cut in (2, len(blob) // 2, len(blob) - 1):
            with pytest.raises(ProtocolError, match="truncated"):
                decode_payload(blob[:cut])
        with pytest.raises(ProtocolError, match="trailing"):
            decode_payload(blob + b"x")
        with pytest.raises(ProtocolError, match="meta"):
            decode_payload(b"\x00\x00\x00\x02{]")

    def _read(self, raw: bytes, **kwargs):
        async def _run():
            reader = asyncio.StreamReader()
            reader.feed_data(raw)
            reader.feed_eof()
            return await _read_frame(reader, **kwargs)

        return asyncio.run(_run())

    def test_read_frame_eof_truncation_and_cap(self):
        # Clean EOF at a frame boundary is a normal hang-up...
        assert self._read(b"", max_payload=100) is None
        # ...EOF mid-header or mid-payload is not.
        with pytest.raises(ProtocolError, match="truncated"):
            self._read(pack_frame(OP_KERNEL, 1, b"")[:7], max_payload=100)
        with pytest.raises(ProtocolError, match="truncated"):
            self._read(pack_frame(OP_KERNEL, 1, b"abcdef")[:-2], max_payload=100)
        # Oversized frames answer 413 before any payload is buffered.
        with pytest.raises(ProtocolError) as exc:
            self._read(pack_frame(OP_KERNEL, 1, b"x" * 50), max_payload=10)
        assert exc.value.status == 413

    def test_read_frame_round_trip(self):
        payload = encode_payload({"status": 200})
        frame = self._read(pack_frame(OP_RESULT, 42, payload), max_payload=1 << 20)
        assert frame == (OP_RESULT, 42, payload)


# ---------------------------------------------------------------------- #
# Live server: pipelining + flow control over real sockets
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def wire_server():
    config = ServeConfig(
        port=0,
        wire_port=0,
        wire_credits=8,
        models=(),
        max_batch=8,
        max_wait_ms=2.0,
    )
    bg = BackgroundServer(config)
    A = random_csr(48, 48, density=0.1, seed=3)
    bg.server.registry.register_graph("g", A)
    with bg:
        yield bg, A


class TestWireEndToEnd:
    def test_hello_grants_credits(self, wire_server):
        bg, _A = wire_server
        with WireClient(bg.host, bg.wire_port) as client:
            assert client.credits == 8
            assert client.outstanding == 0

    def test_kernel_bitwise_and_statz_surfacing(self, wire_server):
        bg, A = wire_server
        X, Y = make_xy(A, 4, seed=1)
        expected = fusedmm(A, X, Y, pattern="sigmoid_embedding")
        with WireClient(bg.host, bg.wire_port) as client:
            Z = client.kernel(model="g", x=X, y=Y)
            np.testing.assert_array_equal(Z, expected)
            assert Z.dtype == expected.dtype
        stats = bg.server.statz()
        assert stats["wire"]["frames_served"] >= 1
        assert stats["wire"]["port"] == bg.wire_port

    def test_inline_graph_kernel(self, wire_server):
        bg, _A = wire_server
        A, X, Y = _mk_problem(30, 4, 11)
        expected = fusedmm(A, X, Y, pattern="gcn")
        with WireClient(bg.host, bg.wire_port) as client:
            Z = client.kernel(graph=A, x=X, y=Y, pattern="gcn")
            np.testing.assert_array_equal(Z, expected)

    def test_pipelined_responses_complete_out_of_order(self, wire_server):
        """Responses are matched by request-id, not arrival order: waiting
        on the *last* submitted id first forces the client to buffer any
        earlier responses, which must then resolve from the buffer."""
        bg, A = wire_server
        X, _ = make_xy(A, 4, seed=2)
        expected = fusedmm(A, X, X, pattern="sigmoid_embedding")
        with WireClient(bg.host, bg.wire_port) as client:
            rids = [client.send_kernel(model="g", x=X) for _ in range(5)]
            assert client.outstanding == 5
            # Deliberately collect in reverse submission order.
            for rid in reversed(rids):
                value = client._wait_for(rid)
                assert not isinstance(value, Exception)
                np.testing.assert_array_equal(value, expected)
            assert client.outstanding == 0

    def test_client_side_credit_guard(self, wire_server):
        bg, A = wire_server
        X, _ = make_xy(A, 4, seed=4)
        with WireClient(bg.host, bg.wire_port) as client:
            rids = [
                client.send_kernel(model="g", x=X) for _ in range(client.credits)
            ]
            with pytest.raises(RuntimeError, match="credits"):
                client.send_kernel(model="g", x=X)
            for _ in rids:
                rid, value = client.recv()
                assert not isinstance(value, Exception)

    def test_error_frames_carry_typed_statuses(self, wire_server):
        bg, A = wire_server
        X, _ = make_xy(A, 4, seed=5)
        with WireClient(bg.host, bg.wire_port) as client:
            with pytest.raises(ServeError) as exc:
                client.kernel(model="no-such-graph", x=X)
            assert exc.value.http_status == 404
            with pytest.raises(ServeError) as exc:
                client.kernel(model="g", x=X, pattern="nope")
            assert exc.value.http_status == 400
            # The connection survives per-request errors.
            Z = client.kernel(model="g", x=X)
            np.testing.assert_array_equal(
                Z, fusedmm(A, X, X, pattern="sigmoid_embedding")
            )

    def test_server_enforces_credit_limit(self):
        """A client writing past its grant gets a status-400 error frame
        (not 429 — protocol misuse, not load) and loses the connection."""
        config = ServeConfig(
            port=0,
            wire_port=0,
            wire_credits=2,
            models=(),
            max_batch=64,
            max_wait_ms=500.0,
            idle_flush_ms=0.0,
        )
        bg = BackgroundServer(config)
        A = random_csr(32, 32, density=0.1, seed=6)
        bg.server.registry.register_graph("g", A)
        X, _ = make_xy(A, 4, seed=6)
        with bg:
            with WireClient(bg.host, bg.wire_port) as client:
                # Bypass the client-side guard: write three raw frames
                # while the 500ms window parks the first two unanswered.
                for rid in (101, 102, 103):
                    client._sock.sendall(
                        pack_frame(
                            OP_KERNEL,
                            rid,
                            encode_payload(
                                {"model": "g", "pattern": "sigmoid_embedding"},
                                {"x": X},
                            ),
                        )
                    )
                # The violation is answered before either parked request
                # completes, as a connection-level (id 0) error frame.
                with pytest.raises(ServeError, match="credit") as exc:
                    while True:
                        client.recv()
            assert exc.value.http_status == 400
            stats = bg.server.statz()
            assert stats["wire"]["protocol_errors"] == 1

    def test_drain_answers_new_frames_with_503(self):
        """Frames arriving while the coalescer drains get DrainingError
        frames on a live connection — never silence or a dead socket."""
        config = ServeConfig(
            port=0,
            wire_port=0,
            models=(),
            max_batch=8,
            max_wait_ms=2.0,
        )
        bg = BackgroundServer(config)
        A = random_csr(32, 32, density=0.1, seed=7)
        bg.server.registry.register_graph("g", A)
        X, _ = make_xy(A, 4, seed=7)
        with bg:
            with WireClient(bg.host, bg.wire_port) as client:
                Z = client.kernel(model="g", x=X)  # connection is live
                np.testing.assert_array_equal(
                    Z, fusedmm(A, X, X, pattern="sigmoid_embedding")
                )
                bg.run_coroutine(bg.server.coalescer.drain())
                for _ in range(2):
                    rid = client.send_kernel(model="g", x=X)
                    got_rid, value = client.recv()
                    assert got_rid == rid
                    assert isinstance(value, DrainingError)
                    assert value.http_status == 503

    def test_mid_pipeline_drain_answers_every_outstanding_id(self):
        """Drain beginning with requests pipelined: each outstanding id is
        answered (result or 503) before the server hangs up."""
        config = ServeConfig(
            port=0,
            wire_port=0,
            wire_credits=8,
            models=(),
            max_batch=64,
            max_wait_ms=50.0,
            idle_flush_ms=0.0,
        )
        bg = BackgroundServer(config)
        A = random_csr(32, 32, density=0.1, seed=8)
        bg.server.registry.register_graph("g", A)
        X, _ = make_xy(A, 4, seed=8)
        expected = fusedmm(A, X, X, pattern="sigmoid_embedding")
        with bg:
            with WireClient(bg.host, bg.wire_port) as client:
                rids = {client.send_kernel(model="g", x=X) for _ in range(4)}
                # Shutdown from another thread while all four sit in the
                # open 50ms window.
                stopper = threading.Thread(target=bg.stop)
                stopper.start()
                answered = {}
                for _ in range(len(rids)):
                    rid, value = client.recv()
                    answered[rid] = value
                stopper.join()
            assert set(answered) == rids
            for value in answered.values():
                if isinstance(value, Exception):
                    assert isinstance(value, DrainingError)
                else:
                    np.testing.assert_array_equal(value, expected)


# ---------------------------------------------------------------------- #
# Wire ≡ HTTP: the transports answer with identical bytes
# ---------------------------------------------------------------------- #
class TestTransportEquivalence:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(0, 50),
        n=st.integers(8, 60),
        d=st.sampled_from([1, 3, 8]),
        dtype=st.sampled_from([np.float32, np.float64]),
        pattern=st.sampled_from(["sigmoid_embedding", "gcn", "spmm"]),
    )
    def test_wire_and_http_bitwise_equal(
        self, wire_server, seed, n, d, dtype, pattern
    ):
        bg, _A = wire_server
        A, X, Y = _mk_problem(n, d, seed, dtype)
        expected = fusedmm(A, X, Y, pattern=pattern)
        with WireClient(bg.host, bg.wire_port) as wire:
            Z_wire = wire.kernel(graph=A, x=X, y=Y, pattern=pattern)
        with ServeClient(bg.host, bg.port) as http:
            Z_http = http.kernel(graph=A, X=X, Y=Y, pattern=pattern, binary=True)
        assert Z_wire.dtype == Z_http.dtype == expected.dtype
        np.testing.assert_array_equal(Z_wire, Z_http)
        np.testing.assert_array_equal(Z_wire, expected)

    def test_hello_and_error_opcodes_reserved(self):
        # Opcode values are wire ABI: renumbering breaks deployed clients.
        assert (OP_HELLO, OP_KERNEL, OP_RESULT, OP_ERROR) == (
            0x01,
            0x10,
            0x20,
            0x21,
        )
