"""Unit tests for the graph substrate: container, generators, datasets,
features."""

import numpy as np
import pytest

from repro.errors import DatasetError, ShapeError
from repro.graphs import (
    Graph,
    barabasi_albert,
    clique_chain,
    dataset_spec,
    degree_features,
    erdos_renyi,
    list_datasets,
    load_dataset,
    one_hot_labels,
    paper_table5,
    power_law_configuration,
    random_features,
    regular_grid,
    rmat,
    star,
    uniform_features,
    xavier_init,
)
from repro.graphs.generators import stochastic_block_model
from repro.sparse import CSRMatrix


# ------------------------------------------------------------------ #
# Graph container
# ------------------------------------------------------------------ #
def test_graph_basic_properties(small_square_csr):
    g = Graph(small_square_csr, name="test")
    assert g.num_vertices == small_square_csr.nrows
    assert g.num_edges == small_square_csr.nnz
    assert g.num_classes == 0
    stats = g.stats()
    assert stats.num_vertices == g.num_vertices
    assert stats.as_row()["graph"] == "test"


def test_graph_feature_shape_check(small_square_csr):
    with pytest.raises(ShapeError):
        Graph(small_square_csr, features=np.ones((3, 4), dtype=np.float32))


def test_graph_label_shape_check(small_square_csr):
    with pytest.raises(ShapeError):
        Graph(small_square_csr, labels=np.zeros(3, dtype=np.int64))


def test_graph_with_features(small_square_csr):
    feats = random_features(small_square_csr.nrows, 8, seed=0)
    g = Graph(small_square_csr).with_features(feats)
    assert g.features.shape == (small_square_csr.nrows, 8)


def test_graph_subgraph_is_row_slice(small_square_csr):
    feats = random_features(small_square_csr.nrows, 4, seed=0)
    labels = np.arange(small_square_csr.nrows) % 3
    g = Graph(small_square_csr, features=feats, labels=labels)
    rows = np.array([5, 1, 9])
    sub = g.subgraph(rows)
    assert sub.adjacency.shape == (3, small_square_csr.ncols)
    assert np.allclose(sub.features, feats[rows])
    assert np.array_equal(sub.labels, labels[rows])


def test_graph_num_classes(small_square_csr):
    labels = np.zeros(small_square_csr.nrows, dtype=np.int64)
    labels[0] = 4
    g = Graph(small_square_csr, labels=labels)
    assert g.num_classes == 5


# ------------------------------------------------------------------ #
# Generators
# ------------------------------------------------------------------ #
def _assert_valid_symmetric(A: CSRMatrix):
    dense = A.to_dense()
    assert np.allclose(dense, dense.T)
    assert np.all(np.diag(dense) == 0)


def test_rmat_basic_properties():
    A = rmat(128, 512, seed=0)
    assert A.shape == (128, 128)
    assert A.nnz > 0
    _assert_valid_symmetric(A)


def test_rmat_determinism():
    assert rmat(64, 256, seed=5) == rmat(64, 256, seed=5)
    assert rmat(64, 256, seed=5) != rmat(64, 256, seed=6)


def test_rmat_skewed_degrees():
    A = rmat(256, 2048, seed=1)
    degrees = A.row_degrees()
    # RMAT should produce a skewed distribution: max well above the mean.
    assert degrees.max() > 3 * max(degrees.mean(), 1)


def test_rmat_invalid_args():
    with pytest.raises(ShapeError):
        rmat(0, 10)
    with pytest.raises(ShapeError):
        rmat(10, -1)
    with pytest.raises(ValueError):
        rmat(10, 10, a=0.9, b=0.3, c=0.3)


def test_erdos_renyi_average_degree():
    A = erdos_renyi(500, avg_degree=8, seed=2)
    assert 4 < A.avg_degree() < 10
    _assert_valid_symmetric(A)


def test_barabasi_albert_connected_tail():
    A = barabasi_albert(200, attach=2, seed=3)
    _assert_valid_symmetric(A)
    assert A.row_degrees().max() > 5


def test_power_law_configuration_targets():
    A = power_law_configuration(400, avg_degree=6, max_degree=50, seed=4)
    _assert_valid_symmetric(A)
    assert 2 < A.avg_degree() < 12
    assert A.max_degree() <= 2 * 50  # symmetrisation can at most double the cap


def test_stochastic_block_model_homophily():
    A, labels = stochastic_block_model(300, num_blocks=3, avg_degree=8, intra_fraction=0.95, seed=5)
    _assert_valid_symmetric(A)
    assert labels.shape == (300,)
    rows = np.repeat(np.arange(A.nrows), A.row_degrees())
    same = labels[rows] == labels[A.indices]
    # Most edges stay within a community.
    assert same.mean() > 0.7


def test_regular_grid_degrees():
    A = regular_grid(5)
    degrees = A.row_degrees()
    assert degrees.min() == 2  # corners
    assert degrees.max() == 4  # interior


def test_star_graph():
    A = star(10)
    degrees = A.row_degrees()
    assert degrees[0] == 9
    assert np.all(degrees[1:] == 1)


def test_clique_chain():
    A = clique_chain(3, 4)
    assert A.nrows == 12
    assert A.row_degrees().max() >= 3


def test_generator_input_validation():
    with pytest.raises(ShapeError):
        erdos_renyi(0, 2)
    with pytest.raises(ShapeError):
        regular_grid(0)
    with pytest.raises(ShapeError):
        clique_chain(0, 3)
    with pytest.raises(ShapeError):
        stochastic_block_model(0, 2, 3)


# ------------------------------------------------------------------ #
# Dataset registry
# ------------------------------------------------------------------ #
def test_registry_lists_all_paper_graphs():
    names = list_datasets()
    for expected in ["cora", "harvard", "pubmed", "flickr", "ogbprot", "amazon", "youtube", "orkut"]:
        assert expected in names
    assert len(paper_table5()) == len(names)


def test_dataset_spec_lookup_case_insensitive():
    assert dataset_spec("Ogbprot.").name == "ogbprot"
    with pytest.raises(DatasetError):
        dataset_spec("imagenet")


def test_load_dataset_determinism():
    a = load_dataset("cora")
    b = load_dataset("cora")
    assert a.adjacency == b.adjacency
    assert np.array_equal(a.labels, b.labels)


def test_load_dataset_scale():
    full = load_dataset("youtube", scale=0.25)
    assert full.num_vertices == pytest.approx(40000 * 0.25, rel=0.1)


def test_load_dataset_labels_for_citation_graphs():
    cora = load_dataset("cora")
    assert cora.num_classes == 7
    assert cora.labels.shape == (cora.num_vertices,)
    pubmed = load_dataset("pubmed", scale=0.3)
    assert pubmed.num_classes == 3


def test_load_dataset_features_on_request():
    g = load_dataset("cora", feature_dim=24)
    assert g.features.shape == (g.num_vertices, 24)


def test_load_dataset_meta_records_paper_stats():
    g = load_dataset("orkut", scale=0.5)
    assert g.meta["paper_vertices"] == 3072441
    assert g.meta["synthetic"] is True
    assert g.meta["scale_factor"] > 1.0


def test_load_dataset_avg_degree_tracks_paper():
    # Average degree of the synthetic twin should be within 2x of the paper's
    # value for the moderate-degree graphs (heavier ones are capped).
    for name in ["cora", "pubmed", "amazon", "youtube"]:
        g = load_dataset(name, scale=0.5 if name != "cora" else 1.0)
        paper = g.meta["paper_avg_degree"]
        assert 0.4 * paper < g.adjacency.avg_degree() < 2.5 * paper, name


# ------------------------------------------------------------------ #
# Feature initialisers
# ------------------------------------------------------------------ #
def test_random_features_scale_and_determinism():
    a = random_features(100, 64, seed=1)
    b = random_features(100, 64, seed=1)
    assert np.allclose(a, b)
    assert a.dtype == np.float32
    assert abs(float(a.std()) - 1.0 / np.sqrt(64)) < 0.05


def test_uniform_features_range():
    f = uniform_features(50, 3, low=-1.0, high=1.0, seed=0)
    assert f.min() >= -1.0 and f.max() < 1.0


def test_one_hot_labels():
    labels = np.array([0, 2, 1])
    onehot = one_hot_labels(labels)
    assert onehot.shape == (3, 3)
    assert np.allclose(onehot.sum(axis=1), 1.0)
    assert one_hot_labels(np.array([], dtype=np.int64)).shape == (0, 0)


def test_one_hot_labels_validation():
    with pytest.raises(ShapeError):
        one_hot_labels(np.zeros((2, 2)))


def test_degree_features(small_square_csr):
    f = degree_features(small_square_csr, dim=6)
    assert f.shape == (small_square_csr.nrows, 6)
    assert np.isfinite(f).all()


def test_xavier_init_limits():
    w = xavier_init(100, 50, seed=0)
    limit = np.sqrt(6.0 / 150)
    assert w.shape == (100, 50)
    assert np.abs(w).max() <= limit + 1e-6


def test_feature_init_validation():
    with pytest.raises(ShapeError):
        random_features(-1, 4)
    with pytest.raises(ShapeError):
        uniform_features(4, -1)
    with pytest.raises(ShapeError):
        xavier_init(-1, 3)
