"""Integration tests spanning multiple subsystems end to end.

These tests chain dataset generation → kernels → applications → evaluation
the way the examples and experiments do, on sizes small enough for CI.
"""

import numpy as np

from repro import FusedMM, fusedmm
from repro.apps import (
    GCN,
    GCNConfig,
    Force2Vec,
    Force2VecConfig,
    FRLayout,
    FRLayoutConfig,
    evaluate_embeddings,
)
from repro.baselines import unfused_fusedmm
from repro.graphs import load_dataset, one_hot_labels, random_features
from repro.perf import fusedmm_memory_bytes, time_kernel
from repro.sparse import write_matrix_market, read_matrix_market


def test_dataset_to_kernel_to_embedding_pipeline():
    """Load a synthetic dataset, run the kernel, train a few epochs and
    evaluate — the quickstart path."""
    graph = load_dataset("cora", scale=0.5)
    X = random_features(graph.num_vertices, 32, seed=0)
    Z = fusedmm(graph.adjacency, X, pattern="sigmoid_embedding")
    assert Z.shape == X.shape

    model = Force2Vec(graph, Force2VecConfig(dim=32, epochs=15, learning_rate=0.1, seed=0))
    emb = model.train()
    metrics = evaluate_embeddings(emb, graph.labels, seed=0)
    assert metrics["f1_micro"] > 0.35  # well above the 1/7 random baseline


def test_fused_and_unfused_training_reach_same_embeddings():
    graph = load_dataset("cora", scale=0.4)
    runs = {}
    for backend in ("fused", "unfused"):
        model = Force2Vec(
            graph, Force2VecConfig(dim=16, epochs=3, seed=5, backend=backend, batch_size=128)
        )
        runs[backend] = model.train()
    assert np.allclose(runs["fused"], runs["unfused"], atol=1e-3)


def test_gcn_on_synthetic_pubmed_learns():
    graph = load_dataset("pubmed", scale=0.1)
    rng = np.random.default_rng(0)
    noisy = one_hot_labels(graph.labels, graph.num_classes)
    noisy = noisy + 0.3 * rng.standard_normal(noisy.shape).astype(np.float32)
    graph = graph.with_features(noisy.astype(np.float32))
    gcn = GCN(graph, config=GCNConfig(hidden_dim=16, epochs=30, learning_rate=0.3, seed=0))
    gcn.fit()
    assert gcn.accuracy() > 0.6


def test_layout_and_kernel_share_adjacency():
    graph = load_dataset("youtube", scale=0.05)
    layout = FRLayout(graph, FRLayoutConfig(iterations=3, seed=0, repulsive_samples=1))
    pos = layout.run()
    assert pos.shape == (graph.num_vertices, 2)
    # The same adjacency feeds a planned FusedMM kernel.
    kernel = FusedMM(graph.adjacency, pattern="fr_layout")
    Z = kernel(pos.astype(np.float32))
    assert Z.shape == pos.shape


def test_matrix_market_export_import_kernel_equivalence(tmp_path):
    graph = load_dataset("cora", scale=0.3)
    path = tmp_path / "cora.mtx"
    write_matrix_market(path, graph.adjacency)
    reloaded = read_matrix_market(path)
    X = random_features(graph.num_vertices, 8, seed=1)
    a = fusedmm(graph.adjacency, X, pattern="gcn")
    b = fusedmm(reloaded, X, pattern="gcn")
    assert np.allclose(a, b, atol=1e-4)


def test_fused_uses_less_peak_traffic_than_unfused_for_fr():
    """The memory-model ordering behind Fig. 10(b), checked through the
    byte-accounting API on a real synthetic graph."""
    graph = load_dataset("flickr", scale=0.2)
    from repro.baselines import unfused_memory_bytes

    d = 64
    fused_bytes = fusedmm_memory_bytes(graph.adjacency, d).total_bytes
    unfused_bytes = unfused_memory_bytes(graph.adjacency, d, pattern="fr_layout")
    assert unfused_bytes > 1.5 * fused_bytes


def test_kernel_timing_protocol_runs():
    graph = load_dataset("amazon", scale=0.1)
    X = random_features(graph.num_vertices, 32, seed=0)
    timing = time_kernel(
        fusedmm, graph.adjacency, X, pattern="sigmoid_embedding", repeats=2, warmup=1
    )
    assert timing.mean > 0
    baseline = time_kernel(
        unfused_fusedmm, graph.adjacency, X, X, pattern="sigmoid_embedding", repeats=2
    )
    assert baseline.mean > 0


def test_planned_kernel_reuse_across_epoch_like_loop():
    graph = load_dataset("cora", scale=0.4)
    kernel = FusedMM(graph.adjacency, pattern="sigmoid_embedding", num_threads=2)
    X = random_features(graph.num_vertices, 16, seed=2).astype(np.float32)
    previous = None
    for _ in range(3):
        Z = kernel(X)
        X = (0.5 * X + 0.5 * Z / (np.linalg.norm(Z, axis=1, keepdims=True) + 1e-9)).astype(
            np.float32
        )
        assert np.isfinite(X).all()
        if previous is not None:
            assert X.shape == previous.shape
        previous = X
