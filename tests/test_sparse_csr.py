"""Unit tests for the CSR matrix substrate."""

import numpy as np
import pytest

from repro.errors import ShapeError, SparseFormatError
from repro.sparse import COOMatrix, CSRMatrix, random_csr


def test_shape_nnz_dtype(tiny_csr):
    assert tiny_csr.shape == (4, 5)
    assert tiny_csr.nnz == 5
    assert np.issubdtype(tiny_csr.dtype, np.floating)


def test_from_dense_roundtrip(tiny_csr):
    dense = tiny_csr.to_dense()
    again = CSRMatrix.from_dense(dense)
    assert again == tiny_csr


def test_from_dense_rejects_1d():
    with pytest.raises(ShapeError):
        CSRMatrix.from_dense(np.ones(4))


def test_invalid_indptr_length():
    with pytest.raises(SparseFormatError):
        CSRMatrix(2, 2, np.array([0, 1]), np.array([0]), np.array([1.0]))


def test_indptr_must_start_at_zero():
    with pytest.raises(SparseFormatError):
        CSRMatrix(1, 2, np.array([1, 2]), np.array([0]), np.array([1.0]))


def test_indptr_must_be_monotone():
    with pytest.raises(SparseFormatError):
        CSRMatrix(2, 2, np.array([0, 2, 1]), np.array([0, 1]), np.array([1.0, 1.0]))


def test_column_index_out_of_range():
    with pytest.raises(SparseFormatError):
        CSRMatrix(1, 2, np.array([0, 1]), np.array([5]), np.array([1.0]))


def test_indices_length_mismatch():
    with pytest.raises(SparseFormatError):
        CSRMatrix(1, 3, np.array([0, 2]), np.array([0]), np.array([1.0]))


def test_from_coo_sums_duplicates():
    coo = COOMatrix(2, 2, np.array([0, 0]), np.array([1, 1]), np.array([1.0, 4.0]))
    csr = CSRMatrix.from_coo(coo)
    assert csr.nnz == 1
    assert csr.to_dense()[0, 1] == pytest.approx(5.0)


def test_from_coo_sorts_columns():
    coo = COOMatrix(1, 5, np.array([0, 0, 0]), np.array([4, 0, 2]), np.array([1.0, 2.0, 3.0]))
    csr = CSRMatrix.from_coo(coo)
    assert list(csr.indices) == [0, 2, 4]
    assert csr.has_sorted_indices()


def test_identity():
    eye = CSRMatrix.identity(4)
    assert np.allclose(eye.to_dense(), np.eye(4))


def test_empty():
    empty = CSRMatrix.empty(3, 6)
    assert empty.nnz == 0
    assert empty.to_dense().sum() == 0


def test_row_access(tiny_csr):
    cols, vals = tiny_csr.row(0)
    assert list(cols) == [1, 3]
    assert list(vals) == pytest.approx([1.0, 2.0])
    cols1, vals1 = tiny_csr.row(1)
    assert cols1.size == 0 and vals1.size == 0


def test_row_access_out_of_range(tiny_csr):
    with pytest.raises(IndexError):
        tiny_csr.row(10)


def test_row_degrees_avg_max(tiny_csr):
    assert list(tiny_csr.row_degrees()) == [2, 0, 2, 1]
    assert tiny_csr.avg_degree() == pytest.approx(5 / 4)
    assert tiny_csr.max_degree() == 2


def test_memory_bytes_formula(tiny_csr):
    expected = 12 * tiny_csr.nnz + 8 * (tiny_csr.nrows + 1)
    assert tiny_csr.memory_bytes() == expected


def test_row_slice(tiny_csr):
    sub = tiny_csr.row_slice(1, 3)
    assert sub.shape == (2, 5)
    assert np.allclose(sub.to_dense(), tiny_csr.to_dense()[1:3])


def test_row_slice_invalid(tiny_csr):
    with pytest.raises(IndexError):
        tiny_csr.row_slice(3, 1)
    with pytest.raises(IndexError):
        tiny_csr.row_slice(0, 99)


def test_select_rows_reorders(tiny_csr):
    sub = tiny_csr.select_rows([3, 0])
    dense = tiny_csr.to_dense()
    assert np.allclose(sub.to_dense(), dense[[3, 0]])


def test_select_rows_out_of_range(tiny_csr):
    with pytest.raises(IndexError):
        tiny_csr.select_rows([0, 9])


def test_spmm_reference_matches_dense(small_rect_csr, rng):
    Y = rng.standard_normal((small_rect_csr.ncols, 8)).astype(np.float32)
    out = small_rect_csr.spmm(Y)
    assert np.allclose(out, small_rect_csr.to_dense() @ Y, atol=1e-4)


def test_spmm_shape_check(tiny_csr):
    with pytest.raises(ShapeError):
        tiny_csr.spmm(np.ones((3, 2), dtype=np.float32))


def test_transpose(small_rect_csr):
    t = small_rect_csr.transpose()
    assert t.shape == (small_rect_csr.ncols, small_rect_csr.nrows)
    assert np.allclose(t.to_dense(), small_rect_csr.to_dense().T)


def test_scale_rows_and_cols(tiny_csr):
    row_scale = np.array([1.0, 2.0, 3.0, 4.0], dtype=np.float32)
    col_scale = np.arange(1, 6, dtype=np.float32)
    scaled_rows = tiny_csr.scale_rows(row_scale)
    scaled_cols = tiny_csr.scale_cols(col_scale)
    dense = tiny_csr.to_dense()
    assert np.allclose(scaled_rows.to_dense(), dense * row_scale[:, None])
    assert np.allclose(scaled_cols.to_dense(), dense * col_scale[None, :])


def test_scale_shape_checks(tiny_csr):
    with pytest.raises(ShapeError):
        tiny_csr.scale_rows(np.ones(3))
    with pytest.raises(ShapeError):
        tiny_csr.scale_cols(np.ones(3))


def test_copy_is_deep(tiny_csr):
    cp = tiny_csr.copy()
    cp.data[:] = 99.0
    assert not np.allclose(tiny_csr.data, 99.0)


def test_astype():
    A = random_csr(10, 10, density=0.2, seed=0)
    B = A.astype(np.float64)
    assert B.data.dtype == np.float64
    assert np.allclose(A.to_dense(), B.to_dense())


def test_scipy_roundtrip(small_square_csr):
    scipy_mat = small_square_csr.to_scipy()
    back = CSRMatrix.from_scipy(scipy_mat)
    assert back == small_square_csr


def test_to_coo_roundtrip(small_square_csr):
    assert CSRMatrix.from_coo(small_square_csr.to_coo()) == small_square_csr


def test_equality_and_inequality(tiny_csr):
    assert tiny_csr == tiny_csr.copy()
    other = CSRMatrix.identity(4)
    assert tiny_csr != other
    assert (tiny_csr == "not a matrix") is False or (tiny_csr == "not a matrix") is NotImplemented


def test_from_edges_constructor():
    csr = CSRMatrix.from_edges([(0, 1), (1, 0)], nrows=2)
    assert csr.nnz == 2
    assert csr.to_dense()[0, 1] == 1.0
