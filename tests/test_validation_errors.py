"""Unit tests for operand validation and the exception hierarchy."""

import numpy as np
import pytest

from repro import errors
from repro.core.validation import ensure_float_matrix, validate_operands
from repro.sparse import CSRMatrix, random_csr


# ------------------------------------------------------------------ #
# Exception hierarchy
# ------------------------------------------------------------------ #
def test_all_errors_derive_from_repro_error():
    for name in [
        "ShapeError",
        "DTypeError",
        "SparseFormatError",
        "OperatorError",
        "PatternError",
        "BackendError",
        "PartitionError",
        "CodegenError",
        "DatasetError",
        "ConvergenceError",
    ]:
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError)


def test_shape_error_is_value_error():
    assert issubclass(errors.ShapeError, ValueError)
    assert issubclass(errors.DTypeError, TypeError)
    assert issubclass(errors.DatasetError, KeyError)


# ------------------------------------------------------------------ #
# ensure_float_matrix
# ------------------------------------------------------------------ #
def test_ensure_float_matrix_accepts_float_and_int():
    out = ensure_float_matrix(np.ones((2, 3), dtype=np.float32), "X")
    assert out.dtype == np.float32
    out_int = ensure_float_matrix(np.ones((2, 3), dtype=np.int32), "X")
    assert np.issubdtype(out_int.dtype, np.floating)
    out_bool = ensure_float_matrix(np.ones((2, 3), dtype=bool), "X")
    assert np.issubdtype(out_bool.dtype, np.floating)


def test_ensure_float_matrix_rejects_bad_inputs():
    with pytest.raises(errors.ShapeError):
        ensure_float_matrix(np.ones(3), "X")
    with pytest.raises(errors.DTypeError):
        ensure_float_matrix(np.array([["a", "b"]]), "X")


def test_ensure_float_matrix_returns_contiguous():
    arr = np.ones((4, 6), dtype=np.float32)[:, ::2]
    assert not arr.flags["C_CONTIGUOUS"]
    assert ensure_float_matrix(arr, "X").flags["C_CONTIGUOUS"]


# ------------------------------------------------------------------ #
# validate_operands
# ------------------------------------------------------------------ #
def test_validate_operands_defaults_y_to_x():
    A = random_csr(10, 10, density=0.2, seed=0)
    X = np.ones((10, 4), dtype=np.float32)
    A2, X2, Y2 = validate_operands(A, X)
    assert Y2 is X2


def test_validate_operands_rectangular_requires_y():
    A = random_csr(5, 8, density=0.2, seed=0)
    X = np.ones((5, 4), dtype=np.float32)
    with pytest.raises(errors.ShapeError):
        validate_operands(A, X)
    Y = np.ones((8, 4), dtype=np.float32)
    A2, X2, Y2 = validate_operands(A, X, Y)
    assert A2.shape == (5, 8)


def test_validate_operands_row_and_dim_mismatches():
    A = random_csr(6, 6, density=0.2, seed=0)
    with pytest.raises(errors.ShapeError):
        validate_operands(A, np.ones((5, 4), dtype=np.float32))
    with pytest.raises(errors.ShapeError):
        validate_operands(
            A, np.ones((6, 4), dtype=np.float32), np.ones((5, 4), dtype=np.float32)
        )
    with pytest.raises(errors.ShapeError):
        validate_operands(
            A, np.ones((6, 4), dtype=np.float32), np.ones((6, 3), dtype=np.float32)
        )


def test_validate_operands_coerces_adjacency():
    dense = np.eye(4, dtype=np.float32)
    A, X, Y = validate_operands(dense, np.ones((4, 2), dtype=np.float32))
    assert isinstance(A, CSRMatrix)
    assert A.nnz == 4
