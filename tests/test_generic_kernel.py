"""Unit tests for the Algorithm 1 reference kernel."""

import numpy as np
import pytest

from repro.core.generic import fusedmm_generic, update_u
from repro.core.patterns import get_pattern
from repro.errors import ShapeError
from repro.sparse import CSRMatrix


def _sigmoid(x):
    return 1.0 / (1.0 + np.exp(-x))


def test_sigmoid_embedding_against_hand_computation():
    # 2-vertex graph: 0 -> 1 with weight 1.
    A = CSRMatrix.from_dense(np.array([[0.0, 1.0], [0.0, 0.0]], dtype=np.float32))
    X = np.array([[1.0, 2.0], [0.5, -1.0]], dtype=np.float32)
    Z = fusedmm_generic(A, X, pattern="sigmoid_embedding")
    score = 1.0 * 0.5 + 2.0 * -1.0
    expected_row0 = _sigmoid(score) * X[1]
    assert np.allclose(Z[0], expected_row0, atol=1e-5)
    assert np.allclose(Z[1], 0.0)


def test_gcn_against_hand_computation():
    A = CSRMatrix.from_dense(np.array([[0.0, 2.0, 3.0], [0.0, 0.0, 0.0], [1.0, 0.0, 0.0]], dtype=np.float32))
    X = np.eye(3, dtype=np.float32)
    Z = fusedmm_generic(A, X, pattern="gcn")
    assert np.allclose(Z, A.to_dense() @ X, atol=1e-5)


def test_fr_layout_against_hand_computation():
    A = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 0.0]], dtype=np.float32))
    X = np.array([[0.0, 0.0], [3.0, 4.0]], dtype=np.float32)
    Z = fusedmm_generic(A, X, pattern="fr_layout")
    diff = X[0] - X[1]
    dist = 5.0
    expected = (1.0 / (1.0 + dist**2)) * diff
    assert np.allclose(Z[0], expected, atol=1e-5)
    assert np.allclose(Z[1], -expected, atol=1e-5)


def test_y_defaults_to_x_only_for_square():
    A = CSRMatrix.from_dense(np.array([[0.0, 1.0, 0.0]], dtype=np.float32))
    X = np.ones((1, 4), dtype=np.float32)
    with pytest.raises(ShapeError):
        fusedmm_generic(A, X, pattern="gcn")


def test_shape_mismatch_raises():
    A = CSRMatrix.identity(3)
    with pytest.raises(ShapeError):
        fusedmm_generic(A, np.ones((2, 4), dtype=np.float32), pattern="gcn")
    with pytest.raises(ShapeError):
        fusedmm_generic(
            A,
            np.ones((3, 4), dtype=np.float32),
            np.ones((3, 5), dtype=np.float32),
            pattern="gcn",
        )


def test_output_dtype_follows_input():
    A = CSRMatrix.identity(3)
    X32 = np.ones((3, 2), dtype=np.float32)
    X64 = np.ones((3, 2), dtype=np.float64)
    assert fusedmm_generic(A, X32, pattern="gcn").dtype == np.float32
    assert fusedmm_generic(A, X64, pattern="gcn").dtype == np.float64


def test_integer_features_accepted():
    A = CSRMatrix.identity(2)
    X = np.array([[1, 2], [3, 4]])
    Z = fusedmm_generic(A, X, pattern="gcn")
    assert np.allclose(Z, X)


def test_empty_matrix():
    A = CSRMatrix.empty(3, 3)
    X = np.ones((3, 2), dtype=np.float32)
    assert np.allclose(fusedmm_generic(A, X, pattern="sigmoid_embedding"), 0.0)


def test_update_u_direct_call():
    pattern = get_pattern("gcn").resolved()
    Y = np.array([[1.0, 1.0], [2.0, 2.0]], dtype=np.float32)
    out = np.zeros(2)
    update_u(pattern, np.zeros(2, dtype=np.float32), np.array([0, 1]), np.array([1.0, 3.0], dtype=np.float32), Y, out)
    assert np.allclose(out, [7.0, 7.0])


def test_explicit_op_overrides():
    A = CSRMatrix.from_dense(np.array([[0.0, 1.0], [0.0, 0.0]], dtype=np.float32))
    X = np.array([[1.0, 2.0], [3.0, 4.0]], dtype=np.float32)
    # Plain neighbour sum: SEL2ND / ASUM.
    Z = fusedmm_generic(A, X, pattern=None, vop="SEL2ND", mop="NOOP", aop="ASUM")
    assert np.allclose(Z[0], X[1])
