"""Tests for the benchmark record helper and the shard-scaling bench."""

import json

import numpy as np

from repro.bench.record import (
    SCHEMA_VERSION,
    bench_environment,
    load_benchmark,
    record_benchmark,
)
from repro.bench.shard_bench import bench_shard_scaling
from repro.cli import main


def test_bench_environment_shape():
    env = bench_environment()
    for key in ("python", "platform", "cpus", "numpy", "repro"):
        assert key in env
    assert env["cpus"] >= 1


def test_record_benchmark_roundtrip(tmp_path):
    rows = [
        {"metric": "speedup", "value": np.float64(2.5), "sizes": np.array([1, 2])},
        {"metric": "nnz", "value": np.int64(42)},
    ]
    path = record_benchmark(
        "unittest", rows, path=tmp_path / "BENCH_unittest.json",
        extra={"config": {"quick": True}},
    )
    assert path.name == "BENCH_unittest.json"
    payload = load_benchmark(path)
    assert payload["schema_version"] == SCHEMA_VERSION
    assert payload["benchmark"] == "unittest"
    assert payload["config"] == {"quick": True}
    assert payload["rows"][0]["value"] == 2.5
    assert payload["rows"][0]["sizes"] == [1, 2]
    assert payload["rows"][1]["value"] == 42
    # NumPy scalars were coerced: the file is plain JSON.
    json.loads(path.read_text())


def test_record_benchmark_default_path(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    path = record_benchmark("demo", [{"a": 1}])
    assert path.name == "BENCH_demo.json"
    assert load_benchmark(path)["rows"] == [{"a": 1}]


def test_bench_shard_scaling_rows_verify_identity():
    rows = bench_shard_scaling(
        num_nodes=400, avg_degree=8, dim=8, repeats=1, shard_counts=(1, 2)
    )
    assert [r["shards"] for r in rows] == [1, 2]
    assert all(r["identical"] for r in rows)
    assert rows[0]["speedup_vs_1shard"] == 1.0
    for r in rows:
        assert r["edges_per_s"] > 0


def test_cli_bench_shard_writes_json(tmp_path, capsys):
    out = tmp_path / "BENCH_shard.json"
    code = main(
        [
            "bench", "shard",
            "--nodes", "400",
            "--dim", "8",
            "--shards", "1", "2",
            "--repeats", "1",
            "--json", str(out),
        ]
    )
    assert code == 0
    captured = capsys.readouterr().out
    assert "Shard scaling" in captured
    payload = load_benchmark(out)
    assert payload["benchmark"] == "shard"
    assert len(payload["rows"]) == 2
