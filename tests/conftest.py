"""Shared fixtures for the test suite.

All graphs used by the unit tests are tiny (tens to a few thousand
vertices) so the full suite runs in well under a minute; the larger
synthetic dataset twins are only exercised by the benchmark suite.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.graphs import random_features  # noqa: E402
from repro.sparse import CSRMatrix, random_csr  # noqa: E402


@pytest.fixture
def rng():
    """Deterministic NumPy generator for test-local randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_csr() -> CSRMatrix:
    """A hand-built 4×5 CSR matrix with a known dense form."""
    dense = np.array(
        [
            [0.0, 1.0, 0.0, 2.0, 0.0],
            [0.0, 0.0, 0.0, 0.0, 0.0],
            [3.0, 0.0, 0.5, 0.0, 0.0],
            [0.0, 0.0, 0.0, 0.0, 4.0],
        ],
        dtype=np.float32,
    )
    return CSRMatrix.from_dense(dense)


@pytest.fixture
def small_square_csr() -> CSRMatrix:
    """A 60×60 random sparse matrix (square, moderately dense)."""
    return random_csr(60, 60, density=0.08, seed=7)


@pytest.fixture
def small_rect_csr() -> CSRMatrix:
    """A 40×90 random rectangular sparse matrix (minibatch-slice shaped)."""
    return random_csr(40, 90, density=0.06, seed=11)


@pytest.fixture
def medium_graph_csr() -> CSRMatrix:
    """A ~1000-vertex power-law-ish graph for integration-level tests."""
    from repro.graphs import rmat

    return rmat(1000, 4000, seed=3)


@pytest.fixture
def features_16(small_square_csr) -> np.ndarray:
    """16-dimensional features matching the small square matrix."""
    return random_features(small_square_csr.nrows, 16, seed=0)


@pytest.fixture
def make_xy():
    """The (X, Y) operand-pair helper, exposed as a fixture.

    Test modules that need it at import time import it from
    ``tests/_helpers.py`` instead — never ``from conftest import ...``,
    which collides with ``benchmarks/conftest.py`` during collection.
    """
    from _helpers import make_xy as _make_xy

    return _make_xy
