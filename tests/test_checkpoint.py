"""Torn-write safety and durability contract of :class:`CheckpointStore`.

Every test here attacks the same guarantee: a crash at *any* byte
boundary of the write sequence — plus bit rot, truncation and stray temp
files after the fact — leaves the store returning either the previous
checkpoint or the new one, bitwise intact, and recovery never raises.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.errors import CheckpointError
from repro.jobs import CHECKPOINT_MAGIC, CheckpointStore
from repro.jobs.checkpoint import CRASH_POINTS


def _state(epoch: int, *, dtype=np.float64) -> dict:
    rng = np.random.default_rng(epoch)
    return {
        "embeddings": rng.standard_normal((7, 3)).astype(dtype),
        "epoch_count": epoch,
        "temperature": 0.1 * epoch,
    }


class _CrashAt:
    """Raise at one named crash point — the simulated ``kill -9``."""

    def __init__(self, point: str) -> None:
        self.point = point

    def __call__(self, point: str) -> None:
        if point == self.point:
            raise RuntimeError(f"simulated crash at {self.point}")


# ---------------------------------------------------------------------- #
# Round trip
# ---------------------------------------------------------------------- #
def test_round_trip_preserves_arrays_scalars_and_meta(tmp_path):
    store = CheckpointStore(tmp_path)
    state = _state(3)
    path = store.save(3, state, meta={"fingerprint": "abc", "spec": {"dim": 3}})
    assert path.exists()

    loaded = CheckpointStore(tmp_path).latest()
    assert loaded is not None
    assert loaded.epoch == 3
    assert loaded.meta == {"fingerprint": "abc", "spec": {"dim": 3}}
    assert np.array_equal(loaded.state["embeddings"], state["embeddings"])
    assert loaded.state["epoch_count"] == 3
    assert loaded.state["temperature"] == pytest.approx(0.3)


@pytest.mark.parametrize(
    "dtype", [np.float32, np.float64, np.int32, np.int64, np.uint32]
)
def test_round_trip_is_bitwise_for_every_dtype(tmp_path, dtype):
    store = CheckpointStore(tmp_path)
    array = np.arange(24, dtype=dtype).reshape(4, 6)
    store.save(1, {"a": array})
    loaded = store.latest().state["a"]
    assert loaded.dtype == array.dtype
    assert np.array_equal(loaded, array)


def test_rng_bitgenerator_state_round_trips(tmp_path):
    # The exact use the determinism contract depends on: a generator's
    # state dict survives (JSON-able scalars) and reproduces the stream.
    rng = np.random.default_rng(5)
    rng.standard_normal(10)
    state = json.loads(json.dumps(rng.bit_generator.state))
    store = CheckpointStore(tmp_path)
    store.save(1, {"rng": state})
    restored = np.random.default_rng(0)
    restored.bit_generator.state = store.latest().state["rng"]
    assert np.array_equal(rng.standard_normal(5), restored.standard_normal(5))


def test_empty_directory_is_a_fresh_start(tmp_path):
    store = CheckpointStore(tmp_path / "never-written")
    assert store.latest() is None
    assert store.epochs_available() == []


def test_save_validates_inputs(tmp_path):
    store = CheckpointStore(tmp_path)
    with pytest.raises(CheckpointError):
        store.save(-1, {})
    with pytest.raises(CheckpointError):
        store.save(0, {"bad": object()})
    with pytest.raises(CheckpointError):
        CheckpointStore(tmp_path, keep_last=0)


# ---------------------------------------------------------------------- #
# Pruning
# ---------------------------------------------------------------------- #
def test_keep_last_prunes_older_checkpoints(tmp_path):
    store = CheckpointStore(tmp_path, keep_last=2)
    for epoch in range(1, 6):
        store.save(epoch, _state(epoch))
    assert store.epochs_available() == [4, 5]
    assert store.latest().epoch == 5
    assert store.stats()["checkpoints_written"] == 5


# ---------------------------------------------------------------------- #
# Simulated crashes at every point of the write sequence
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("point", CRASH_POINTS)
def test_crash_at_any_point_leaves_previous_or_new(tmp_path, point):
    store = CheckpointStore(tmp_path)
    store.save(1, _state(1))
    store.crash_hook = _CrashAt(point)
    with pytest.raises(RuntimeError, match="simulated crash"):
        store.save(2, _state(2))

    recovered = CheckpointStore(tmp_path)  # fresh process
    checkpoint = recovered.latest()
    assert checkpoint is not None
    if point == "temp-written":
        # Crash before the rename: the new file never landed.
        assert checkpoint.epoch == 1
    else:
        # Crash after the rename: the new checkpoint is durable even if
        # the manifest is stale ("renamed") or pruning never ran.
        assert checkpoint.epoch == 2
    assert np.array_equal(
        checkpoint.state["embeddings"], _state(checkpoint.epoch)["embeddings"]
    )


def test_stale_manifest_does_not_shadow_newer_checkpoint(tmp_path):
    store = CheckpointStore(tmp_path)
    store.save(1, _state(1))
    store.crash_hook = _CrashAt("renamed")
    with pytest.raises(RuntimeError):
        store.save(2, _state(2))
    manifest = json.loads((tmp_path / "MANIFEST.json").read_text())
    assert manifest["epoch"] == 1  # stale on purpose
    assert CheckpointStore(tmp_path).latest().epoch == 2


def test_crash_leftovers_are_cleaned_by_the_next_save(tmp_path):
    store = CheckpointStore(tmp_path)
    store.crash_hook = _CrashAt("temp-written")
    with pytest.raises(RuntimeError):
        store.save(1, _state(1))
    assert list(tmp_path.glob(".ckpt-*.tmp"))
    store.crash_hook = None
    store.save(2, _state(2))
    assert not list(tmp_path.glob(".ckpt-*.tmp"))
    assert not list(tmp_path.glob(".MANIFEST.json.tmp"))


# ---------------------------------------------------------------------- #
# Corruption after the fact: recovery never raises
# ---------------------------------------------------------------------- #
def test_truncated_checkpoint_falls_back_to_previous(tmp_path):
    store = CheckpointStore(tmp_path)
    store.save(1, _state(1))
    newest = store.save(2, _state(2))
    blob = newest.read_bytes()
    newest.write_bytes(blob[: len(blob) // 2])

    recovered = CheckpointStore(tmp_path)
    checkpoint = recovered.latest()
    assert checkpoint.epoch == 1
    assert recovered.invalid_skipped >= 1


@pytest.mark.parametrize(
    "corrupt",
    [
        lambda blob: b"",                                  # zero-length file
        lambda blob: blob[: len(CHECKPOINT_MAGIC)],        # header cut short
        lambda blob: b"XXXX" + blob[4:],                   # wrong magic
        lambda blob: blob[:-8] + b"\x00" * 8,              # payload bit rot
        lambda blob: blob + b"junk",                       # trailing garbage
    ],
)
def test_corrupt_single_checkpoint_recovers_to_none(tmp_path, corrupt):
    store = CheckpointStore(tmp_path)
    path = store.save(1, _state(1))
    path.write_bytes(corrupt(path.read_bytes()))
    recovered = CheckpointStore(tmp_path)
    assert recovered.latest() is None  # never raises
    assert recovered.invalid_skipped >= 1


def test_corrupt_manifest_is_just_a_useless_hint(tmp_path):
    store = CheckpointStore(tmp_path)
    store.save(1, _state(1))
    store.save(2, _state(2))
    for garbage in (b"not json", b'{"latest": 42}', b'{"latest": "../x.ckpt"}'):
        (tmp_path / "MANIFEST.json").write_bytes(garbage)
        assert CheckpointStore(tmp_path).latest().epoch == 2
    os.unlink(tmp_path / "MANIFEST.json")
    assert CheckpointStore(tmp_path).latest().epoch == 2


def test_stray_tmp_files_are_ignored_by_recovery(tmp_path):
    store = CheckpointStore(tmp_path)
    store.save(1, _state(1))
    (tmp_path / ".ckpt-00000009.ckpt.tmp").write_bytes(b"partial write")
    assert CheckpointStore(tmp_path).latest().epoch == 1
