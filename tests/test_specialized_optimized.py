"""Unit tests for the specialized kernels and the optimized-kernel details
(strategy selection, blocking internals)."""

import numpy as np
import pytest

from repro.core.optimized import (
    DEFAULT_BLOCK_SIZE,
    _edge_block_ranges,
    fusedmm_edgeblocked,
    fusedmm_optimized,
)
from repro.core.patterns import get_pattern
from repro.core.specialized import (
    fr_layout_kernel,
    gcn_kernel,
    get_specialized_kernel,
    sigmoid_embedding_kernel,
    spmm_kernel,
)
from repro.sparse import random_bipartite, random_csr
from _helpers import make_xy


@pytest.fixture(scope="module")
def square():
    A = random_csr(90, 90, density=0.06, seed=5)
    X, Y = make_xy(A, 20, seed=9)
    return A, X, Y


# ------------------------------------------------------------------ #
# Specialized kernels
# ------------------------------------------------------------------ #
def test_sigmoid_embedding_kernel_matches_formula(square):
    A, X, Y = square
    Z = sigmoid_embedding_kernel(A, X, Y)
    dense = A.to_dense() != 0
    scores = X @ Y.T
    expected = ((1.0 / (1.0 + np.exp(-scores))) * dense) @ Y
    assert np.allclose(Z, expected, atol=1e-3)


def test_spmm_kernel_matches_matmul(square):
    A, X, Y = square
    assert np.allclose(spmm_kernel(A, Y), A.to_dense() @ Y, atol=1e-3)


def test_spmm_kernel_rejects_bad_shape(square):
    A, _, Y = square
    with pytest.raises(ValueError):
        spmm_kernel(A, Y[:-1])


def test_gcn_kernel_equals_spmm(square):
    A, X, Y = square
    assert np.allclose(gcn_kernel(A, X, Y), spmm_kernel(A, Y), atol=1e-5)


def test_fr_layout_kernel_formula(square):
    A, X, Y = square
    Z = fr_layout_kernel(A, X, Y)
    # Check one nonzero row against the direct formula.
    u = int(np.argmax(A.row_degrees()))
    cols, _ = A.row(u)
    diff = X[u] - Y[cols]
    dist2 = np.sum(diff**2, axis=1)
    expected = ((1.0 / (1.0 + dist2))[:, None] * diff).sum(axis=0)
    assert np.allclose(Z[u], expected, atol=1e-3)


def test_get_specialized_kernel_mapping():
    assert get_specialized_kernel(get_pattern("sigmoid_embedding").resolved()) is sigmoid_embedding_kernel
    assert get_specialized_kernel(get_pattern("fr_layout").resolved()) is fr_layout_kernel
    assert get_specialized_kernel(get_pattern("gcn").resolved()) is gcn_kernel
    assert get_specialized_kernel(get_pattern("sddmm_dot").resolved()) is None


def test_specialized_kernels_on_rectangular_slice():
    A = random_bipartite(25, 70, avg_degree=5, seed=3)
    X, Y = make_xy(A, 12, seed=4)
    assert sigmoid_embedding_kernel(A, X, Y).shape == (25, 12)
    assert spmm_kernel(A, Y).shape == (25, 12)
    assert fr_layout_kernel(A, X, Y).shape == (25, 12)


def test_specialized_kernels_thread_invariance(square):
    A, X, Y = square
    assert np.allclose(
        sigmoid_embedding_kernel(A, X, Y, num_threads=1),
        sigmoid_embedding_kernel(A, X, Y, num_threads=3),
        atol=1e-6,
    )


# ------------------------------------------------------------------ #
# Optimized kernel internals
# ------------------------------------------------------------------ #
def test_edge_block_ranges_cover_exactly():
    ranges = list(_edge_block_ranges(3, 20, 6))
    assert ranges[0][0] == 3 and ranges[-1][1] == 20
    covered = sum(stop - start for start, stop in ranges)
    assert covered == 17
    assert all(stop - start <= 6 for start, stop in ranges)
    assert list(_edge_block_ranges(5, 5, 4)) == []


def test_edgeblocked_rejects_bad_block_size(square):
    A, X, Y = square
    with pytest.raises(ValueError):
        fusedmm_edgeblocked(A, X, Y, block_size=0)


def test_optimized_strategy_auto_selection():
    dense_graph = random_csr(40, 40, density=0.9, seed=1)  # avg degree >> 32
    sparse_graph = random_csr(200, 200, density=0.01, seed=2)
    Xd, Yd = make_xy(dense_graph, 8, seed=0)
    Xs, Ys = make_xy(sparse_graph, 8, seed=0)
    # Whatever strategy auto picks, the result must match the explicit ones.
    za = fusedmm_optimized(dense_graph, Xd, Yd, pattern="gcn", strategy="auto")
    zr = fusedmm_optimized(dense_graph, Xd, Yd, pattern="gcn", strategy="row")
    assert np.allclose(za, zr, atol=1e-4)
    za2 = fusedmm_optimized(sparse_graph, Xs, Ys, pattern="gcn", strategy="auto")
    ze2 = fusedmm_optimized(sparse_graph, Xs, Ys, pattern="gcn", strategy="edge")
    assert np.allclose(za2, ze2, atol=1e-4)


def test_optimized_unknown_strategy(square):
    A, X, Y = square
    with pytest.raises(ValueError):
        fusedmm_optimized(A, X, Y, strategy="banana")


def test_default_block_size_reasonable():
    assert 1024 <= DEFAULT_BLOCK_SIZE <= 1_000_000
