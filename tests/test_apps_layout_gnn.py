"""Unit tests for the FR layout, GCN and MLP-GNN applications."""

import numpy as np
import pytest

from repro.apps import (
    FRLayout,
    FRLayoutConfig,
    GCN,
    GCNConfig,
    MLPGNN,
    MLPGNNLayer,
    normalize_adjacency,
)
from repro.errors import BackendError, ShapeError
from repro.graphs import Graph, one_hot_labels, regular_grid
from repro.graphs.generators import stochastic_block_model
from repro.sparse import random_csr


@pytest.fixture(scope="module")
def labelled_graph():
    A, labels = stochastic_block_model(180, num_blocks=3, avg_degree=12, intra_fraction=0.92, seed=7)
    # Features: noisy one-hot labels, so a GCN can actually learn.
    rng = np.random.default_rng(0)
    feats = one_hot_labels(labels, 3) + 0.2 * rng.standard_normal((A.nrows, 3)).astype(np.float32)
    return Graph(A, features=feats.astype(np.float32), labels=labels, name="sbm")


# ------------------------------------------------------------------ #
# FR layout
# ------------------------------------------------------------------ #
def test_fr_layout_config_validation():
    with pytest.raises(BackendError):
        FRLayoutConfig(backend="gpu")
    with pytest.raises(ShapeError):
        FRLayoutConfig(dim=0)
    with pytest.raises(ShapeError):
        FRLayoutConfig(cooling=0.0)


def test_fr_layout_requires_square():
    with pytest.raises(ShapeError):
        FRLayout(Graph(random_csr(5, 8, density=0.3, seed=0)))


def test_fr_layout_runs_and_shrinks_edges():
    A = regular_grid(6)
    layout = FRLayout(Graph(A), FRLayoutConfig(iterations=15, seed=0, repulsive_samples=2))
    before = layout.edge_length_stats()["mean"]
    positions = layout.run()
    after = layout.edge_length_stats()["mean"]
    assert positions.shape == (A.nrows, 2)
    assert np.isfinite(positions).all()
    # Attractive forces should pull connected vertices together on average.
    assert after < before
    assert len(layout.iteration_seconds) == 15


def test_fr_layout_backends_agree_one_step():
    A = regular_grid(5)
    results = {}
    for backend in ["fused", "unfused", "fused_generic"]:
        layout = FRLayout(
            Graph(A), FRLayoutConfig(iterations=1, seed=4, backend=backend, repulsive_samples=0)
        )
        layout.run()
        results[backend] = layout.positions.copy()
    assert np.allclose(results["fused"], results["unfused"], atol=1e-4)
    assert np.allclose(results["fused"], results["fused_generic"], atol=1e-4)


def test_fr_layout_step_returns_displacement():
    A = regular_grid(4)
    layout = FRLayout(Graph(A), FRLayoutConfig(seed=0))
    disp = layout.step(temperature=0.1)
    assert disp >= 0.0


# ------------------------------------------------------------------ #
# GCN
# ------------------------------------------------------------------ #
def test_normalize_adjacency_row_sums():
    A = regular_grid(4)
    A_hat = normalize_adjacency(A)
    dense = A_hat.to_dense()
    assert np.allclose(dense, dense.T, atol=1e-6)
    # Symmetric normalisation of A+I has spectral radius <= 1.
    eigvals = np.linalg.eigvalsh(dense)
    assert eigvals.max() <= 1.0 + 1e-5


def test_normalize_adjacency_requires_square():
    with pytest.raises(ShapeError):
        normalize_adjacency(random_csr(3, 5, density=0.5, seed=0))


def test_gcn_config_validation():
    with pytest.raises(BackendError):
        GCNConfig(backend="tpu")
    with pytest.raises(ShapeError):
        GCNConfig(hidden_dim=0)


def test_gcn_requires_features_and_labels(labelled_graph):
    with pytest.raises(ShapeError):
        GCN(Graph(labelled_graph.adjacency), num_classes=3)
    with pytest.raises(ShapeError):
        GCN(Graph(labelled_graph.adjacency, features=labelled_graph.features), num_classes=0)


def test_gcn_forward_shapes(labelled_graph):
    gcn = GCN(labelled_graph, config=GCNConfig(hidden_dim=8, epochs=1, seed=0))
    cache = gcn.forward()
    n = labelled_graph.num_vertices
    assert cache["P"].shape == (n, 3)
    assert np.allclose(cache["P"].sum(axis=1), 1.0, atol=1e-6)
    assert gcn.predict().shape == (n,)


def test_gcn_training_improves_accuracy(labelled_graph):
    gcn = GCN(labelled_graph, config=GCNConfig(hidden_dim=16, epochs=40, learning_rate=0.3, seed=0))
    acc_before = gcn.accuracy()
    history = gcn.fit()
    acc_after = gcn.accuracy()
    assert acc_after > max(acc_before, 0.6)
    assert history[-1]["loss"] < history[0]["loss"]


def test_gcn_backends_produce_same_forward(labelled_graph):
    outputs = {}
    for backend in ["fused", "unfused", "vendor"]:
        gcn = GCN(labelled_graph, config=GCNConfig(hidden_dim=8, seed=0, backend=backend))
        outputs[backend] = gcn.forward()["Z2"]
    assert np.allclose(outputs["fused"], outputs["unfused"], atol=1e-4)
    assert np.allclose(outputs["fused"], outputs["vendor"], atol=1e-4)


def test_gcn_train_mask(labelled_graph):
    n = labelled_graph.num_vertices
    mask = np.zeros(n, dtype=bool)
    mask[: n // 2] = True
    gcn = GCN(labelled_graph, config=GCNConfig(hidden_dim=8, epochs=5, seed=0))
    gcn.fit(train_mask=mask)
    assert 0.0 <= gcn.accuracy(mask=~mask) <= 1.0
    with pytest.raises(ShapeError):
        gcn.fit(train_mask=np.ones(3, dtype=bool))


# ------------------------------------------------------------------ #
# MLP-GNN
# ------------------------------------------------------------------ #
def test_mlp_gnn_layer_shapes(labelled_graph):
    layer = MLPGNNLayer(in_dim=3, hidden_dim=8, out_dim=5, seed=0)
    out = layer(labelled_graph.adjacency, labelled_graph.features)
    assert out.shape == (labelled_graph.num_vertices, 5)
    assert np.all(out >= 0.0)  # post-projection ReLU


def test_mlp_gnn_layer_validation():
    with pytest.raises(ShapeError):
        MLPGNNLayer(in_dim=0, hidden_dim=4, out_dim=2)


def test_mlp_gnn_stack_forward(labelled_graph):
    model = MLPGNN(labelled_graph, [6, 4], hidden_dim=8, num_classes=3, seed=1)
    out = model.forward()
    assert out.shape == (labelled_graph.num_vertices, 3)
    assert np.isfinite(out).all()


def test_mlp_gnn_requires_features(labelled_graph):
    with pytest.raises(ShapeError):
        MLPGNN(Graph(labelled_graph.adjacency), [4])


def test_mlp_gnn_layer_matches_generic_backend(labelled_graph):
    layer = MLPGNNLayer(in_dim=3, hidden_dim=6, out_dim=3, seed=2)
    fast = layer(labelled_graph.adjacency, labelled_graph.features, backend="optimized")
    slow = layer(labelled_graph.adjacency, labelled_graph.features, backend="generic")
    assert np.allclose(fast, slow, atol=1e-3)
