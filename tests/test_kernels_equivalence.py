"""Cross-backend equivalence tests — the core correctness property.

For every application pattern of Table III and a variety of graph shapes,
all kernel backends (reference Algorithm 1, row-blocked, edge-blocked,
specialized, generated) and the unfused SDDMM→SpMM pipeline must produce
the same output up to floating-point tolerance.
"""

import numpy as np
import pytest

from repro.baselines import unfused_fusedmm
from repro.core import (
    compile_kernel,
    fusedmm,
    fusedmm_edgeblocked,
    fusedmm_generic,
    fusedmm_rowblocked,
    get_pattern,
    get_specialized_kernel,
    supports_pattern,
)
from repro.sparse import random_bipartite, random_csr
from _helpers import make_xy

PATTERNS = ["sigmoid_embedding", "fr_layout", "gcn", "spmm", "sddmm_dot"]
ATOL = 1e-3


@pytest.fixture(scope="module")
def square_problem():
    A = random_csr(80, 80, density=0.07, seed=3)
    X, Y = make_xy(A, 24, seed=5)
    return A, X, Y


@pytest.fixture(scope="module")
def rect_problem():
    A = random_bipartite(30, 120, avg_degree=6, seed=4)
    X, Y = make_xy(A, 24, seed=6)
    return A, X, Y


@pytest.mark.parametrize("pattern", PATTERNS)
def test_rowblocked_matches_generic(square_problem, pattern):
    A, X, Y = square_problem
    ref = fusedmm_generic(A, X, Y, pattern=pattern)
    out = fusedmm_rowblocked(A, X, Y, pattern=pattern)
    assert np.allclose(out, ref, atol=ATOL)


@pytest.mark.parametrize("pattern", PATTERNS)
def test_edgeblocked_matches_generic(square_problem, pattern):
    A, X, Y = square_problem
    ref = fusedmm_generic(A, X, Y, pattern=pattern)
    out = fusedmm_edgeblocked(A, X, Y, pattern=pattern, block_size=64)
    assert np.allclose(out, ref, atol=ATOL)


@pytest.mark.parametrize("pattern", PATTERNS)
def test_generated_matches_generic(square_problem, pattern):
    A, X, Y = square_problem
    resolved = get_pattern(pattern).resolved()
    assert supports_pattern(resolved)
    kernel = compile_kernel(resolved)
    ref = fusedmm_generic(A, X, Y, pattern=pattern)
    assert np.allclose(kernel(A, X, Y, block_size=128), ref, atol=ATOL)


@pytest.mark.parametrize("pattern", ["sigmoid_embedding", "fr_layout", "gcn"])
def test_specialized_matches_generic(square_problem, pattern):
    A, X, Y = square_problem
    resolved = get_pattern(pattern).resolved()
    kernel = get_specialized_kernel(resolved)
    assert kernel is not None
    ref = fusedmm_generic(A, X, Y, pattern=pattern)
    assert np.allclose(kernel(A, X, Y), ref, atol=ATOL)


@pytest.mark.parametrize("pattern", PATTERNS)
def test_unfused_pipeline_matches_generic(square_problem, pattern):
    A, X, Y = square_problem
    ref = fusedmm_generic(A, X, Y, pattern=pattern)
    out = unfused_fusedmm(A, X, Y, pattern=pattern)
    assert np.allclose(out, ref, atol=ATOL)


@pytest.mark.parametrize("pattern", PATTERNS)
def test_rectangular_operands_all_backends(rect_problem, pattern):
    A, X, Y = rect_problem
    ref = fusedmm_generic(A, X, Y, pattern=pattern)
    for backend in ["optimized", "auto", "generated"]:
        out = fusedmm(A, X, Y, pattern=pattern, backend=backend)
        assert np.allclose(out, ref, atol=ATOL), backend
    assert np.allclose(unfused_fusedmm(A, X, Y, pattern=pattern), ref, atol=ATOL)


@pytest.mark.parametrize("pattern", ["sigmoid_embedding", "gcn"])
def test_empty_rows_are_zero(pattern):
    # Matrix with several empty rows exercises the empty-row handling of
    # every backend.
    A = random_csr(50, 50, density=0.02, seed=9)
    X, Y = make_xy(A, 8, seed=0)
    empty_rows = A.row_degrees() == 0
    assert empty_rows.any(), "fixture should contain empty rows"
    for backend in ["generic", "optimized", "auto", "generated"]:
        Z = fusedmm(A, X, Y, pattern=pattern, backend=backend)
        assert np.allclose(Z[empty_rows], 0.0), backend


def test_gnn_mlp_pattern_all_backends():
    from repro.core import make_mlp_vop
    from repro.graphs.features import xavier_init

    A = random_csr(40, 40, density=0.1, seed=2)
    X, Y = make_xy(A, 12, seed=1)
    mlp = make_mlp_vop(xavier_init(24, 12, seed=3))
    pattern = get_pattern("gnn_mlp", vop=mlp)
    ref = fusedmm_generic(A, X, Y, pattern=pattern)
    for fn in (fusedmm_rowblocked, fusedmm_edgeblocked):
        assert np.allclose(fn(A, X, Y, pattern=pattern), ref, atol=ATOL)
    assert np.allclose(fusedmm(A, X, Y, pattern=pattern, backend="auto"), ref, atol=ATOL)


def test_amax_aggregation_equivalence():
    # AMAX exercises the non-sum accumulator path in every backend.
    A = random_csr(60, 60, density=0.08, seed=12)
    X, Y = make_xy(A, 10, seed=2)
    pattern = get_pattern(None, vop="MUL", rop="NOOP", sop="RELU", mop="NOOP", aop="AMAX")
    ref = fusedmm_generic(A, X, Y, pattern=pattern)
    assert np.allclose(fusedmm_rowblocked(A, X, Y, pattern=pattern), ref, atol=ATOL)
    assert np.allclose(fusedmm_edgeblocked(A, X, Y, pattern=pattern, block_size=32), ref, atol=ATOL)
    assert np.allclose(unfused_fusedmm(A, X, Y, pattern=pattern), ref, atol=ATOL)


def test_weighted_graph_gcn_uses_edge_values():
    # GCN output must depend on the edge weights (EDGESCALE), not just the
    # structure.
    A = random_csr(30, 30, density=0.15, seed=4, value_range=(0.5, 2.0))
    X, Y = make_xy(A, 6, seed=3)
    Z = fusedmm(A, X, Y, pattern="gcn")
    ones = A.copy()
    ones.data = np.ones_like(ones.data)
    Z_unweighted = fusedmm(ones, X, Y, pattern="gcn")
    assert not np.allclose(Z, Z_unweighted)


def test_thread_count_does_not_change_result(medium_graph_csr):
    A = medium_graph_csr
    X, Y = make_xy(A, 16, seed=7)
    base = fusedmm(A, X, Y, pattern="sigmoid_embedding", backend="optimized", num_threads=1)
    for threads in (2, 4):
        out = fusedmm(A, X, Y, pattern="sigmoid_embedding", backend="optimized", num_threads=threads)
        assert np.allclose(out, base, atol=1e-5)


def test_block_size_does_not_change_result(square_problem):
    A, X, Y = square_problem
    ref = fusedmm_edgeblocked(A, X, Y, pattern="sigmoid_embedding", block_size=7)
    for block in (1, 16, 1024, 10**6):
        out = fusedmm_edgeblocked(A, X, Y, pattern="sigmoid_embedding", block_size=block)
        assert np.allclose(out, ref, atol=1e-5)
