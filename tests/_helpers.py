"""Helpers shared by the test modules.

Kept outside ``conftest.py`` deliberately: ``conftest`` is a pytest
implementation detail, and importing it by name from test modules collides
with the *other* ``conftest.py`` of the benchmark suite (both directories
sit on ``sys.path`` during collection, and whichever is imported first
claims the module name).  Test modules import helpers from here;
``conftest.py`` holds fixtures only.
"""

from __future__ import annotations

from repro.graphs import random_features
from repro.sparse import CSRMatrix

__all__ = ["make_xy"]


def make_xy(A: CSRMatrix, d: int, seed: int = 0):
    """(X, Y) operand pair sized for A."""
    X = random_features(A.nrows, d, seed=seed)
    Y = X if A.nrows == A.ncols else random_features(A.ncols, d, seed=seed + 1)
    return X, Y
