"""Dynamic graphs: delta-CSR overlay, incremental invalidation, serving.

The contract under test (ISSUE 10): kernel results computed on a
base+delta overlay are **bitwise identical** to the same kernel on a CSR
freshly rebuilt from the same edge set — at every version, at every
compaction point, across local and remote execution.  Invalidation is
incremental: cached plans are refreshed (not dropped), carried reorder
permutations rebuild only dirty panels, and the remote tier re-ships only
dirty shards.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fused import fusedmm
from repro.errors import DatasetError, ServeError, ShapeError
from repro.graphs import random_features, rmat
from repro.runtime import (
    DynamicGraph,
    KernelRuntime,
    WorkerAgent,
    fingerprint_covers,
    matrix_fingerprint,
    refresh_plan,
)
from repro.sparse import CSRMatrix
from repro.sparse.delta import CompactionPolicy, DeltaCSR, splice_rows
from repro.sparse.reorder import permute_symmetric, reorder_memo_bytes

settings.register_profile("repro-dynamic", deadline=None, max_examples=40)
settings.load_profile("repro-dynamic")

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


# ---------------------------------------------------------------------- #
# Helpers
# ---------------------------------------------------------------------- #
def _rebuild(model: dict, n: int) -> CSRMatrix:
    """A fresh canonical CSR from a ``{(u, v): w}`` edge dict."""
    edges = sorted(model)
    values = [float(model[e]) for e in edges]
    return CSRMatrix.from_edges(edges, n, n, values)


def _rebuild_from(A: CSRMatrix) -> CSRMatrix:
    """Rebuild ``A`` from scratch through the edge-list constructor."""
    rows = np.repeat(np.arange(A.nrows), np.diff(A.indptr))
    edges = list(zip(rows.tolist(), A.indices.tolist()))
    return CSRMatrix.from_edges(edges, A.nrows, A.ncols, A.data.tolist())


def _assert_bitwise(got: CSRMatrix, ref: CSRMatrix) -> None:
    assert got.shape == ref.shape
    assert np.array_equal(got.indptr, ref.indptr)
    assert np.array_equal(got.indices, ref.indices)
    assert got.data.dtype == ref.data.dtype
    assert np.array_equal(got.data, ref.data)


def _apply_ref(model: dict, inserts, deletes) -> None:
    """Reference semantics: deletes first, then inserts upsert."""
    for u, v in deletes:
        model.pop((u, v), None)
    for u, v, w in inserts:
        model[(u, v)] = np.float32(w)


_NEVER = CompactionPolicy(max_delta_ratio=1e9, max_log=10**9)


# ---------------------------------------------------------------------- #
# Property: any interleaving of inserts / deletes / compactions keeps the
# overlay bitwise equal to a full rebuild of the same edge set.
# ---------------------------------------------------------------------- #
@st.composite
def _mutation_script(draw):
    n = draw(st.integers(min_value=3, max_value=10))
    vertex = st.integers(min_value=0, max_value=n - 1)
    edge = st.tuples(vertex, vertex)
    weight = st.floats(
        min_value=-8.0, max_value=8.0, allow_nan=False, width=32
    )
    base = draw(st.dictionaries(edge, weight, max_size=18))
    batches = draw(
        st.lists(
            st.tuples(
                st.lists(st.tuples(vertex, vertex, weight), max_size=6),
                st.lists(edge, max_size=6),
                st.booleans(),
            ),
            min_size=1,
            max_size=8,
        )
    )
    return n, base, batches


@given(_mutation_script())
def test_overlay_bitwise_equals_rebuild_any_interleaving(script):
    n, base_edges, batches = script
    model = dict(base_edges)
    delta = DeltaCSR(_rebuild(model, n), "lin", policy=_NEVER)
    for version, (inserts, deletes, compact) in enumerate(batches, start=1):
        delta, _ = delta.apply(insert=inserts or None, delete=deletes or None)
        _apply_ref(model, inserts, deletes)
        if compact:
            delta = delta.compacted()
        assert delta.version == version
        assert delta.fingerprint == f"lin@v{version}"
        ref = _rebuild(model, n)
        _assert_bitwise(delta.materialize(), ref)
        assert delta.nnz == ref.nnz
        # Row queries answer from the overlay, without materialisation.
        for u in range(n):
            cols, vals = delta.row(u)
            ref_cols, ref_vals = ref.row(u)
            assert np.array_equal(cols, ref_cols)
            assert np.array_equal(vals, ref_vals)


def test_overlay_upsert_and_ignored_delete_semantics():
    base = _rebuild({(0, 1): 1.0, (1, 0): 1.0}, 4)
    delta = DeltaCSR(base, "lin", policy=_NEVER)
    # Upsert an existing edge, insert a new one, delete a missing one.
    delta, batch = delta.apply(
        insert=[(0, 1, 5.0), (2, 3, 2.0)], delete=[(3, 3)]
    )
    assert batch.inserted == 1
    assert batch.updated == 1
    assert batch.deleted == 0
    assert batch.ignored_deletes == 1
    cols, vals = delta.row(0)
    assert cols.tolist() == [1] and vals.tolist() == [5.0]
    # Duplicate inserts within one batch: last occurrence wins.
    delta, _ = delta.apply(insert=[(0, 2, 1.0), (0, 2, 9.0)])
    cols, vals = delta.row(0)
    assert vals[cols.tolist().index(2)] == np.float32(9.0)


def test_overlay_rejects_out_of_range_edges():
    delta = DeltaCSR(_rebuild({(0, 1): 1.0}, 3), "lin", policy=_NEVER)
    with pytest.raises(ShapeError):
        delta.apply(insert=[(0, 3, 1.0)])
    with pytest.raises(ShapeError):
        delta.apply(delete=[(-1, 0)])


def test_compaction_policy_triggers_and_keeps_fingerprint():
    base = _rebuild({(i, (i + 1) % 6): 1.0 for i in range(6)}, 6)
    delta = DeltaCSR(
        base, "lin", policy=CompactionPolicy(max_delta_ratio=1e9, max_log=3)
    )
    delta, _ = delta.apply(insert=[(0, 2, 1.0), (0, 3, 1.0), (0, 4, 1.0)])
    assert delta.should_compact()
    fp = delta.fingerprint
    folded = delta.compacted()
    assert folded.fingerprint == fp  # same edge set, same cache identity
    assert folded.delta_rows == 0 and folded.log_ops == 0
    assert folded.compactions == delta.compactions + 1
    _assert_bitwise(folded.materialize(), delta.materialize())


def test_splice_rows_reproduces_full_rebuild():
    rng = np.random.default_rng(3)
    model = {
        (int(u), int(v)): float(w)
        for u, v, w in zip(
            rng.integers(0, 40, 300),
            rng.integers(0, 40, 300),
            rng.standard_normal(300),
        )
    }
    A = _rebuild(model, 40)
    # Rewrite rows 3 and 17 wholesale through the splice primitive.
    changed = dict(model)
    for (u, v) in list(changed):
        if u in (3, 17):
            del changed[(u, v)]
    changed[(3, 0)] = 2.5
    changed[(17, 39)] = -1.5
    ref = _rebuild(changed, 40)
    rows = np.array([3, 17], dtype=np.int64)
    counts = (ref.indptr[rows + 1] - ref.indptr[rows]).astype(np.int64)
    idx = np.concatenate([ref.indices[ref.indptr[r] : ref.indptr[r + 1]] for r in rows])
    dat = np.concatenate([ref.data[ref.indptr[r] : ref.indptr[r + 1]] for r in rows])
    _assert_bitwise(splice_rows(A, rows, counts, idx, dat), ref)


# ---------------------------------------------------------------------- #
# Plan refresh: carried permutations and dirty-panel rebuilds
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def medium():
    A = rmat(3000, 40_000, seed=11)
    X = random_features(A.nrows, 8, seed=5)
    return A, X


def test_dirty_panel_rebuild_reuses_clean_panels(medium):
    A, X = medium
    with KernelRuntime(num_threads=1, split_nnz=4000, cache_size=16) as rt:
        g = DynamicGraph(A, runtime=rt)
        plan = rt.plan(g.matrix, pattern="sigmoid_embedding", reorder="rcm")
        assert plan.reordered is not None and len(plan.panels) > 1
        result = g.apply_edges(
            insert=[(0, 5, 1.0), (5, 0, 1.0)], delete=[(int(A.indices[0]), 0)]
        )
        assert result.plans_refreshed == 1
        assert result.reorders_carried == 1
        assert result.reorders_rebuilt == 0
        # Only panels overlapping a dirty permuted row were recompacted.
        assert result.panels_rebuilt >= 1
        assert result.panels_reused >= 1
        assert result.panels_rebuilt + result.panels_reused == len(plan.panels)
        # The spliced permuted matrix is exactly what permute_symmetric
        # would produce on the freshly rebuilt CSR.
        entries = rt._cache.entries_for(g.fingerprint)
        assert len(entries) == 1
        new_plan = entries[0][1]
        assert new_plan.key.fingerprint == g.fingerprint
        ref_perm = permute_symmetric(_rebuild_from(g.matrix), new_plan.perm)
        _assert_bitwise(new_plan.reordered, ref_perm)
        # Execution through the refreshed plan still matches the kernel on
        # the rebuilt matrix (reordered tier: allclose, as for statics).
        Z = rt.run(g.matrix, X, pattern="sigmoid_embedding", reorder="rcm")
        ref = fusedmm(
            _rebuild_from(g.matrix), X, X,
            pattern="sigmoid_embedding", num_threads=1,
        )
        np.testing.assert_allclose(Z, ref, rtol=1e-5, atol=1e-5)


def test_carry_bound_exceeded_recomputes_permutation(medium):
    A, _ = medium
    with KernelRuntime(num_threads=1, split_nnz=4000, cache_size=16) as rt:
        plan = rt.plan(A, pattern="sigmoid_embedding", reorder="rcm")
        fp = matrix_fingerprint(A)
        model = {}
        rows = np.repeat(np.arange(A.nrows), np.diff(A.indptr))
        for u, v, w in zip(rows.tolist(), A.indices.tolist(), A.data.tolist()):
            model[(u, v)] = w
        model[(0, A.nrows - 1)] = 1.0
        A_new = _rebuild(model, A.nrows)
        from repro.runtime.plan import PlanKey
        from dataclasses import replace as dc_replace

        new_key = dc_replace(plan.key, fingerprint=f"{fp}@v1")
        # carry_factor=0 makes any drift exceed the bound: full recompute.
        new_plan, info = refresh_plan(
            plan,
            A_new,
            new_key,
            np.array([0], dtype=np.int64),
            split_nnz=rt.split_nnz,
            max_split=rt.max_split,
            carry_factor=0.0,
        )
        assert info["carried"] is False
        assert new_plan.reordered is not None
        ref_perm = permute_symmetric(A_new, new_plan.perm)
        _assert_bitwise(new_plan.reordered, ref_perm)


def test_natural_plan_refresh_keeps_bitwise_identity(medium):
    A, X = medium
    ref0 = fusedmm(A, X, X, pattern="sigmoid_embedding", num_threads=1)
    with KernelRuntime(num_threads=1, cache_size=16) as rt:
        g = DynamicGraph(A, runtime=rt)
        assert np.array_equal(rt.run(g.matrix, X), ref0)
        for step in range(3):
            g.apply_edges(
                insert=[(step, step + 10, 0.5), (step + 10, step, 0.5)]
            )
            rebuilt = _rebuild_from(g.matrix)
            ref = fusedmm(rebuilt, X, X, pattern="sigmoid_embedding", num_threads=1)
            assert np.array_equal(rt.run(g.matrix, X), ref)
        hits_before = rt._cache.stats().hits
        rt.run(g.matrix, X)
        assert rt._cache.stats().hits == hits_before + 1  # refreshed plan hit


# ---------------------------------------------------------------------- #
# Eviction cascade: no derived-fingerprint leaks
# ---------------------------------------------------------------------- #
def test_superseded_version_leaves_plan_cache_and_memo(medium):
    A, _ = medium
    with KernelRuntime(num_threads=1, split_nnz=4000, cache_size=16) as rt:
        g = DynamicGraph(A, runtime=rt)
        v0 = g.fingerprint
        rt.plan(g.matrix, pattern="sigmoid_embedding", reorder="rcm")
        rt.plan(g.matrix, pattern="gcn")
        assert reorder_memo_bytes(v0) > 0
        g.apply_edges(insert=[(0, 7, 1.0), (7, 0, 1.0)])
        # The old version's plans and memo entries are gone; the new
        # version holds refreshed equivalents.
        assert rt._cache.entries_for(v0) == ()
        assert reorder_memo_bytes(v0) == 0
        assert len(rt._cache.entries_for(g.fingerprint)) == 2
        assert reorder_memo_bytes(g.fingerprint) > 0


def test_close_releases_whole_lineage(medium):
    A, _ = medium
    with KernelRuntime(num_threads=1, split_nnz=4000, cache_size=16) as rt:
        g = DynamicGraph(A, runtime=rt)
        lineage = g.lineage
        rt.plan(g.matrix, pattern="sigmoid_embedding", reorder="rcm")
        g.apply_edges(insert=[(0, 9, 1.0), (9, 0, 1.0)])
        released = g.close()
        assert released["plans"] >= 1
        assert rt._cache.entries_for(lineage) == ()
        assert reorder_memo_bytes(lineage) == 0
        assert g.close() == {}  # idempotent


def test_fingerprint_covers_versions_and_derivations():
    assert fingerprint_covers("abc", "abc@v3")
    assert fingerprint_covers("abc", "abc|reorder=rcm")
    assert fingerprint_covers("abc@v3", "abc@v3|reorder=rcm")
    assert not fingerprint_covers("abc@v1", "abc@v10")
    assert not fingerprint_covers("abc", "abcdef")


# ---------------------------------------------------------------------- #
# Memory accounting
# ---------------------------------------------------------------------- #
def test_memory_accounting_tracks_every_tier(medium):
    A, _ = medium
    with KernelRuntime(num_threads=1, split_nnz=4000, cache_size=16) as rt:
        g = DynamicGraph(A, runtime=rt, policy=_NEVER)
        rt.plan(g.matrix, pattern="sigmoid_embedding", reorder="rcm")
        g.apply_edges(insert=[(0, 11, 1.0), (11, 0, 1.0)])
        mem = g.memory()
        for key in (
            "fingerprint", "version", "nnz", "base_bytes", "delta_bytes",
            "delta_rows", "delta_nnz", "log_ops", "compactions",
            "materialized_bytes", "plans", "plan_bytes", "reorder_bytes",
            "total_bytes",
        ):
            assert key in mem, key
        assert mem["version"] == 1
        assert mem["base_bytes"] > 0
        assert mem["delta_bytes"] > 0 and mem["delta_rows"] == 2
        assert mem["materialized_bytes"] > 0  # spliced copy, not the base
        assert mem["plans"] == 1
        assert mem["reorder_bytes"] > 0  # carried permuted copy
        assert mem["total_bytes"] == (
            mem["base_bytes"] + mem["delta_bytes"]
            + mem["materialized_bytes"] + mem["plan_bytes"]
            + mem["reorder_bytes"]
        )
        stats = g.stats()
        assert stats["mutations"] == 1
        assert stats["edges_inserted"] + stats["edges_updated"] == 2


# ---------------------------------------------------------------------- #
# Remote tier: dirty-shard delta ship + old-agent fallback
# ---------------------------------------------------------------------- #
class _AgentThread:
    def __init__(self, port, **kwargs):
        self.agent = WorkerAgent("127.0.0.1", port, **kwargs)
        self.thread = threading.Thread(
            target=self.agent.run_forever,
            kwargs={"reconnect_delay": 1.0},
            daemon=True,
        )
        self.thread.start()

    def stop(self):
        self.agent.stop()
        self.thread.join(timeout=10)


def test_remote_dirty_shard_ships_delta_then_falls_back(medium):
    A, X = medium
    runtime = KernelRuntime(num_threads=1, processes=0, remote_port=0)
    agents = [_AgentThread(runtime.controller.port, name="a0")]
    try:
        assert runtime.controller.wait_for_hosts(1, timeout=15.0) == 1
        controller = runtime.controller
        g = DynamicGraph(A, runtime=runtime)
        Z0 = runtime.run_sharded(g.matrix, X, pattern="sigmoid_embedding")
        assert np.array_equal(
            Z0, fusedmm(A, X, X, pattern="sigmoid_embedding", num_threads=1)
        )
        # Mutation registers a delta source; the next sharded run ships
        # only the dirty rows to the agent still holding v0.
        result = g.apply_edges(insert=[(0, 3, 0.5), (3, 0, 0.5)])
        assert result.delta_sources >= 1
        ships_before = controller.delta_ships
        Z1 = runtime.run_sharded(g.matrix, X, pattern="sigmoid_embedding")
        assert controller.delta_ships == ships_before + 1
        ref = fusedmm(
            _rebuild_from(g.matrix), X, X,
            pattern="sigmoid_embedding", num_threads=1,
        )
        assert np.array_equal(Z1, ref)
        # An agent that never advertised the delta capability (an "old"
        # agent) gets a plain full ship — same bytes, no delta traffic.
        for record in controller.live_hosts():
            record.supports_delta = False
        g.apply_edges(insert=[(1, 4, 0.25), (4, 1, 0.25)])
        ships_before = controller.delta_ships
        Z2 = runtime.run_sharded(g.matrix, X, pattern="sigmoid_embedding")
        assert controller.delta_ships == ships_before
        ref2 = fusedmm(
            _rebuild_from(g.matrix), X, X,
            pattern="sigmoid_embedding", num_threads=1,
        )
        assert np.array_equal(Z2, ref2)
        # Dropping the graph unships every version from the remote LRU.
        released = g.close()
        assert released["remote_matrices"] >= 1
        for record in controller.live_hosts():
            assert not any(
                fingerprint_covers(g.lineage, key) for key in record.loaded
            )
    finally:
        runtime.close()
        for a in agents:
            a.stop()


# ---------------------------------------------------------------------- #
# Serving: POST /v1/graph/<name>/edges, OP_MUTATE, /statz accounting
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def server():
    from repro.serve import ModelSpec, ServeConfig
    from repro.serve.runner import BackgroundServer

    config = ServeConfig(
        port=0,
        wire_port=0,
        models=(ModelSpec("dyn", "cora", app="force2vec", dim=8, scale=0.05),),
        processes=0,
    )
    with BackgroundServer(config) as bg:
        yield bg


def test_http_mutation_endpoint_and_kernel_consistency(server):
    from repro.serve import ServeClient

    with ServeClient(server.host, server.port) as client:
        g = server.server.registry.dynamic_graph("dyn")
        start = g.version
        n = g.shape[0]
        X = random_features(n, 8, seed=9)
        doc = client.mutate(
            "dyn", insert=[[0, 5, 2.0], [5, 0, 2.0]], delete=[[n - 1, n - 1]]
        )
        assert doc["graph"] == "dyn"
        assert doc["version"] == start + 1
        assert doc["inserted"] + doc["updated"] == 2
        assert doc["fingerprint"].endswith(f"@v{start + 1}")
        # Kernel on the mutated model vs the same request with the edge
        # set shipped inline as a freshly rebuilt CSR: bitwise identical.
        z_model = client.kernel(model="dyn", x=X, pattern="gcn")
        rebuilt = _rebuild_from(server.server.registry.graph("dyn"))
        z_inline = client.kernel(graph=rebuilt, x=X, pattern="gcn")
        assert np.array_equal(z_model, z_inline)


def test_statz_reports_per_graph_memory(server):
    from repro.serve import ServeClient

    with ServeClient(server.host, server.port) as client:
        graphs = client.statz()["runtime"]["graphs"]
        assert "dyn" in graphs
        mem = graphs["dyn"]
        for key in ("fingerprint", "version", "base_bytes", "delta_bytes",
                    "plans", "plan_bytes", "total_bytes"):
            assert key in mem, key


def test_wire_mutation_endpoint(server):
    from repro.serve import WireClient

    with WireClient(server.host, server.wire_port) as wire:
        g = server.server.registry.dynamic_graph("dyn")
        start = g.version
        doc = wire.mutate("dyn", insert=[[2, 9, 1.0], [9, 2, 1.0]])
        assert doc["version"] == start + 1
        doc2 = wire.mutate("dyn", delete=[[2, 9], [9, 2]])
        assert doc2["version"] == start + 2
        assert doc2["deleted"] == 2
        cols, _ = g.row(2)
        assert 9 not in cols.tolist()


def test_mutation_error_paths(server):
    from repro.serve import ServeClient, WireClient

    with ServeClient(server.host, server.port) as client:
        with pytest.raises(ServeError) as exc:
            client.mutate("nope", insert=[[0, 1, 1.0]])
        assert exc.value.http_status == 404
        with pytest.raises(ServeError) as exc:
            client.mutate("dyn")  # neither insert nor delete
        assert exc.value.http_status == 400
    with WireClient(server.host, server.wire_port) as wire:
        with pytest.raises(ServeError) as exc:
            wire.mutate("nope", insert=[[0, 1, 1.0]])
        assert exc.value.http_status == 404


def test_registry_drop_graph_evicts_and_forgets(server):
    registry = server.server.registry
    A = rmat(400, 3000, seed=23)
    registry.register_graph("scratch", A)
    registry.mutate_graph("scratch", insert=[(0, 2, 1.0), (2, 0, 1.0)])
    assert registry.graph_memory()["scratch"]["version"] == 1
    registry.drop_graph("scratch")
    assert "scratch" not in registry.graph_memory()
    with pytest.raises(DatasetError):
        registry.graph("scratch")
    with pytest.raises(DatasetError):
        registry.drop_graph("scratch")


def test_concurrent_readers_never_see_torn_versions(server):
    """Writers race readers; every read observes one consistent version."""
    from repro.serve import ServeClient

    registry = server.server.registry
    g = registry.dynamic_graph("dyn")
    n = g.shape[0]
    X = random_features(n, 4, seed=13)
    stop = threading.Event()
    errors: list = []

    def writer():
        k = 0
        while not stop.is_set():
            try:
                registry.mutate_graph(
                    "dyn", insert=[(k % n, (k + 3) % n, 1.0 + k)]
                )
                k += 1
            except Exception as exc:  # pragma: no cover
                errors.append(exc)
                return

    t = threading.Thread(target=writer, daemon=True)
    t.start()
    try:
        with ServeClient(server.host, server.port) as client:
            for _ in range(10):
                Z = client.kernel(model="dyn", x=X, pattern="gcn")
                assert Z.shape == (n, 4)
                assert np.isfinite(Z).all()
    finally:
        stop.set()
        t.join(timeout=30)
    assert not errors
    # Versions advanced monotonically and the final state matches a
    # rebuild of itself bitwise.
    snap = g.snapshot()
    _assert_bitwise(snap.matrix, _rebuild_from(snap.matrix))
    assert snap.version >= 1
