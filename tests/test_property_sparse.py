"""Property-based tests (hypothesis) for the sparse-matrix substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.partition import part1d, partition_balance
from repro.sparse import COOMatrix, CSRMatrix

settings.register_profile("repro", deadline=None, max_examples=40)
settings.load_profile("repro")


@st.composite
def coo_matrices(draw, max_dim=24, max_nnz=80):
    """Random COO matrices, duplicates and empty matrices included."""
    nrows = draw(st.integers(min_value=1, max_value=max_dim))
    ncols = draw(st.integers(min_value=1, max_value=max_dim))
    nnz = draw(st.integers(min_value=0, max_value=max_nnz))
    rows = draw(
        st.lists(st.integers(min_value=0, max_value=nrows - 1), min_size=nnz, max_size=nnz)
    )
    cols = draw(
        st.lists(st.integers(min_value=0, max_value=ncols - 1), min_size=nnz, max_size=nnz)
    )
    vals = draw(
        st.lists(
            st.floats(min_value=-10, max_value=10, allow_nan=False, width=32),
            min_size=nnz,
            max_size=nnz,
        )
    )
    return COOMatrix(
        nrows,
        ncols,
        np.asarray(rows, dtype=np.int64),
        np.asarray(cols, dtype=np.int64),
        np.asarray(vals, dtype=np.float32),
    )


@given(coo_matrices())
def test_csr_roundtrip_preserves_dense_form(coo):
    csr = CSRMatrix.from_coo(coo)
    assert np.allclose(csr.to_dense(), coo.to_dense(), atol=1e-4)
    # COO -> CSR -> COO -> CSR is a fixed point.
    again = CSRMatrix.from_coo(csr.to_coo())
    assert again == csr


@given(coo_matrices())
def test_csr_structure_invariants(coo):
    csr = CSRMatrix.from_coo(coo)
    assert csr.indptr[0] == 0
    assert csr.indptr[-1] == csr.nnz
    assert np.all(np.diff(csr.indptr) >= 0)
    assert csr.has_sorted_indices()
    assert csr.nnz <= coo.nnz  # duplicates can only shrink
    assert np.array_equal(csr.row_degrees(), np.diff(csr.indptr))


@given(coo_matrices())
def test_transpose_involution(coo):
    csr = CSRMatrix.from_coo(coo)
    assert csr.transpose().transpose() == csr


@given(coo_matrices(), st.integers(min_value=1, max_value=64))
def test_spmm_matches_dense(coo, d):
    csr = CSRMatrix.from_coo(coo)
    rng = np.random.default_rng(0)
    Y = rng.standard_normal((csr.ncols, min(d, 8))).astype(np.float32)
    assert np.allclose(csr.spmm(Y), csr.to_dense() @ Y, atol=1e-3)


@given(coo_matrices())
def test_row_slice_concatenation_recovers_matrix(coo):
    csr = CSRMatrix.from_coo(coo)
    mid = csr.nrows // 2
    top = csr.row_slice(0, mid)
    bottom = csr.row_slice(mid, csr.nrows)
    stacked = np.vstack([top.to_dense(), bottom.to_dense()]) if csr.nrows else csr.to_dense()
    assert np.allclose(stacked, csr.to_dense(), atol=1e-5)


@given(coo_matrices())
def test_deduplicate_sum_preserves_total(coo):
    dedup = coo.deduplicate(op="sum")
    assert dedup.to_dense().sum() == pytest.approx(coo.to_dense().sum(), abs=1e-3)
    # No duplicate coordinates remain.
    keys = dedup.rows * dedup.ncols + dedup.cols
    assert len(np.unique(keys)) == dedup.nnz


@given(coo_matrices())
def test_symmetrize_produces_symmetric_matrix(coo):
    n = max(coo.nrows, coo.ncols)
    sym = coo.symmetrize()
    dense = sym.to_dense()
    assert dense.shape == (n, n)
    assert np.allclose(dense, dense.T, atol=1e-5)


@given(coo_matrices(), st.integers(min_value=1, max_value=12))
def test_part1d_cover_and_conservation(coo, num_parts):
    csr = CSRMatrix.from_coo(coo)
    parts = part1d(csr, num_parts)
    assert len(parts) == num_parts
    assert parts[0].start == 0 and parts[-1].stop == csr.nrows
    for prev, cur in zip(parts, parts[1:]):
        assert prev.stop == cur.start
    assert sum(p.nnz for p in parts) == csr.nnz
    assert partition_balance(parts) >= 1.0 or csr.nnz == 0
