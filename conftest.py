"""Repository-level pytest configuration.

Makes the in-tree ``src/`` layout importable even when the package has not
been pip-installed (the offline environment used for development lacks the
``wheel`` package that modern editable installs require, so tests must not
depend on installation state).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
